#include "pgf/decluster/registry.hpp"

#include <gtest/gtest.h>

#include "pgf/gridfile/grid_file.hpp"
#include "pgf/util/rng.hpp"

namespace pgf {
namespace {

GridStructure small_structure() {
    Rng rng(1);
    Rect<2> domain{{{0.0, 0.0}}, {{1.0, 1.0}}};
    GridFile<2>::Config cfg;
    cfg.bucket_capacity = 4;
    GridFile<2> gf(domain, cfg);
    for (std::uint64_t i = 0; i < 300; ++i) {
        gf.insert({{rng.uniform(), rng.uniform()}}, i);
    }
    return gf.structure();
}

TEST(Registry, MethodNames) {
    EXPECT_EQ(to_string(Method::kDiskModulo), "DM");
    EXPECT_EQ(to_string(Method::kFieldwiseXor), "FX");
    EXPECT_EQ(to_string(Method::kHilbert), "HCAM");
    EXPECT_EQ(to_string(Method::kSsp), "SSP");
    EXPECT_EQ(to_string(Method::kMinimax), "MiniMax");
    EXPECT_EQ(to_string(Method::kMst), "MST");
}

TEST(Registry, HeuristicAndWeightNames) {
    EXPECT_EQ(to_string(ConflictHeuristic::kDataBalance), "data-balance");
    EXPECT_EQ(to_string(ConflictHeuristic::kRandom), "random");
    EXPECT_EQ(to_string(ConflictHeuristic::kMostFrequent), "most-frequent");
    EXPECT_EQ(to_string(ConflictHeuristic::kAreaBalance), "area-balance");
    EXPECT_EQ(to_string(WeightKind::kProximityIndex), "proximity-index");
    EXPECT_EQ(to_string(WeightKind::kCenterSimilarity), "center-similarity");
}

TEST(Registry, IsIndexBasedClassification) {
    EXPECT_TRUE(is_index_based(Method::kDiskModulo));
    EXPECT_TRUE(is_index_based(Method::kFieldwiseXor));
    EXPECT_TRUE(is_index_based(Method::kHilbert));
    EXPECT_TRUE(is_index_based(Method::kMorton));
    EXPECT_TRUE(is_index_based(Method::kGrayCode));
    EXPECT_TRUE(is_index_based(Method::kScan));
    EXPECT_FALSE(is_index_based(Method::kMst));
    EXPECT_FALSE(is_index_based(Method::kSsp));
    EXPECT_FALSE(is_index_based(Method::kMinimax));
}

TEST(Registry, ParseMethodRoundTrip) {
    EXPECT_EQ(parse_method("dm"), Method::kDiskModulo);
    EXPECT_EQ(parse_method("fx"), Method::kFieldwiseXor);
    EXPECT_EQ(parse_method("hcam"), Method::kHilbert);
    EXPECT_EQ(parse_method("hilbert"), Method::kHilbert);
    EXPECT_EQ(parse_method("minimax"), Method::kMinimax);
    EXPECT_EQ(parse_method("ssp"), Method::kSsp);
    EXPECT_EQ(parse_method("zorder"), Method::kMorton);
    EXPECT_EQ(parse_method("nope"), std::nullopt);
}

TEST(Registry, AllMethodsListedOnce) {
    const auto& ms = all_methods();
    EXPECT_EQ(ms.size(), 10u);
}

TEST(Registry, DeclusterDispatchesEveryMethod) {
    GridStructure gs = small_structure();
    for (Method m : all_methods()) {
        Assignment a = decluster(gs, m, 6, {.seed = 5});
        ASSERT_EQ(a.disk_of.size(), gs.bucket_count()) << to_string(m);
        ASSERT_EQ(a.num_disks, 6u);
        for (auto d : a.disk_of) ASSERT_LT(d, 6u) << to_string(m);
    }
}

TEST(Registry, DeclusterIsSeedDeterministic) {
    GridStructure gs = small_structure();
    for (Method m : all_methods()) {
        DeclusterOptions opt;
        opt.seed = 33;
        Assignment a = decluster(gs, m, 8, opt);
        Assignment b = decluster(gs, m, 8, opt);
        EXPECT_EQ(a.disk_of, b.disk_of) << to_string(m);
    }
}

TEST(Registry, HeuristicOptionChangesIndexBasedResults) {
    GridStructure gs = small_structure();
    // There are merged buckets in this structure, so random vs data-balance
    // should differ (with overwhelming probability) for FX.
    DeclusterOptions balanced;
    balanced.heuristic = ConflictHeuristic::kDataBalance;
    DeclusterOptions random;
    random.heuristic = ConflictHeuristic::kRandom;
    random.seed = 12345;
    Assignment a = decluster(gs, Method::kFieldwiseXor, 8, balanced);
    Assignment b = decluster(gs, Method::kFieldwiseXor, 8, random);
    if (gs.merged_bucket_count() > 3) {
        EXPECT_NE(a.disk_of, b.disk_of);
    }
}

}  // namespace
}  // namespace pgf
