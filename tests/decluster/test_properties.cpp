// Cross-method property sweeps: invariants every declustering algorithm in
// the registry must satisfy, parameterized over (method, disk count).
#include <gtest/gtest.h>

#include <tuple>

#include "pgf/decluster/registry.hpp"
#include "pgf/disksim/simulator.hpp"
#include "pgf/gridfile/grid_file.hpp"
#include "pgf/util/rng.hpp"
#include "pgf/workload/query_gen.hpp"

namespace pgf {
namespace {

const GridStructure& shared_structure() {
    static const GridStructure gs = [] {
        Rng rng(77);
        Rect<2> domain{{{0.0, 0.0}}, {{1.0, 1.0}}};
        GridFile<2> gf(domain, {.bucket_capacity = 5});
        // Mixture: half uniform, half clustered, so there are merged
        // buckets and meaningful proximity structure.
        for (std::uint64_t i = 0; i < 900; ++i) {
            if (i % 2 == 0) {
                gf.insert({{rng.uniform(), rng.uniform()}}, i);
            } else {
                gf.insert({{std::clamp(rng.normal(0.3, 0.08), 0.0, 0.999),
                            std::clamp(rng.normal(0.6, 0.08), 0.0, 0.999)}},
                          i);
            }
        }
        return gf.structure();
    }();
    return gs;
}

class MethodDiskProperty
    : public ::testing::TestWithParam<std::tuple<Method, std::uint32_t>> {};

TEST_P(MethodDiskProperty, AssignmentCoversAllBucketsWithValidDisks) {
    auto [method, m] = GetParam();
    const GridStructure& gs = shared_structure();
    Assignment a = decluster(gs, method, m, {.seed = 5});
    ASSERT_EQ(a.disk_of.size(), gs.bucket_count());
    ASSERT_EQ(a.num_disks, m);
    for (std::uint32_t d : a.disk_of) ASSERT_LT(d, m);
}

TEST_P(MethodDiskProperty, SeedDeterminism) {
    auto [method, m] = GetParam();
    const GridStructure& gs = shared_structure();
    Assignment a = decluster(gs, method, m, {.seed = 11});
    Assignment b = decluster(gs, method, m, {.seed = 11});
    EXPECT_EQ(a.disk_of, b.disk_of);
}

TEST_P(MethodDiskProperty, EveryDiskUsedWhenBucketsAbound) {
    auto [method, m] = GetParam();
    const GridStructure& gs = shared_structure();
    ASSERT_GT(gs.bucket_count(), 8u * m);  // plenty of buckets per disk
    Assignment a = decluster(gs, method, m, {.seed = 5});
    auto load = a.load();
    for (std::uint32_t d = 0; d < m; ++d) {
        EXPECT_GT(load[d], 0u) << to_string(method) << " disk " << d;
    }
}

TEST_P(MethodDiskProperty, ResponseBetweenOptimalAndSerial) {
    auto [method, m] = GetParam();
    const GridStructure& gs = shared_structure();
    Assignment a = decluster(gs, method, m, {.seed = 5});
    // Rebuild matching query bucket sets from the same structure geometry.
    Rng rng(99);
    std::vector<std::vector<std::uint32_t>> qb;
    for (int q = 0; q < 100; ++q) {
        // Synthetic queries: random contiguous bucket-id runs stand in for
        // spatial queries (valid input to the metric either way).
        std::size_t len = 1 + rng.below(20);
        std::size_t start = rng.below(static_cast<std::uint32_t>(
            gs.bucket_count() - len));
        std::vector<std::uint32_t> buckets;
        for (std::size_t k = 0; k < len; ++k) {
            buckets.push_back(static_cast<std::uint32_t>(start + k));
        }
        qb.push_back(std::move(buckets));
    }
    WorkloadStats s = evaluate_workload(qb, a);
    EXPECT_GE(s.avg_response + 1e-12, s.optimal);
    EXPECT_LE(s.max_response, 20.0);  // never worse than fully serial
}

TEST_P(MethodDiskProperty, BalancedMethodsMeetTheirGuarantee) {
    auto [method, m] = GetParam();
    const GridStructure& gs = shared_structure();
    Assignment a = decluster(gs, method, m, {.seed = 5});
    auto load = a.load();
    std::size_t cap = (gs.bucket_count() + m - 1) / m;
    if (method == Method::kMinimax || method == Method::kSsp ||
        method == Method::kSimilarityGraph) {
        for (auto l : load) EXPECT_LE(l, cap) << to_string(method);
    } else {
        // Index-based and MST methods do not guarantee the cap, but must
        // stay within a sane constant factor on this benign structure.
        for (auto l : load) EXPECT_LE(l, 4 * cap) << to_string(method);
    }
}

std::vector<std::tuple<Method, std::uint32_t>> all_cases() {
    std::vector<std::tuple<Method, std::uint32_t>> cases;
    for (Method m : all_methods()) {
        for (std::uint32_t disks : {2u, 5u, 16u}) {
            cases.emplace_back(m, disks);
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, MethodDiskProperty, ::testing::ValuesIn(all_cases()),
    [](const auto& param_info) {
        // NOTE: no structured bindings here — the comma inside `auto [a, b]`
        // would split the macro argument.
        std::string name = to_string(std::get<0>(param_info.param)) + "M" +
                           std::to_string(std::get<1>(param_info.param));
        std::erase(name, '-');
        return name;
    });

}  // namespace
}  // namespace pgf
