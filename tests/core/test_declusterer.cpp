#include "pgf/core/declusterer.hpp"

#include <gtest/gtest.h>

#include "pgf/disksim/metrics.hpp"
#include "pgf/gridfile/grid_file.hpp"
#include "pgf/util/rng.hpp"
#include "pgf/workload/datasets.hpp"

namespace pgf {
namespace {

GridStructure sample_structure() {
    Rng rng(3);
    return make_hotspot2d(rng, 3000).build().structure();
}

TEST(Declusterer, ValidatesStructureOnConstruction) {
    GridStructure broken;
    broken.shape = {4};
    broken.domain_lo = {0.0};
    broken.domain_hi = {1.0};  // no buckets -> cells uncovered
    EXPECT_THROW(Declusterer{broken}, CheckError);

    EXPECT_NO_THROW(Declusterer{sample_structure()});
}

TEST(Declusterer, ReportMetricsMatchStandaloneFunctions) {
    Declusterer dec(sample_structure());
    DeclusterReport report = dec.run(Method::kHilbert, 12, {.seed = 7});
    EXPECT_DOUBLE_EQ(report.data_balance,
                     degree_of_data_balance(report.assignment));
    EXPECT_DOUBLE_EQ(report.area_balance,
                     degree_of_area_balance(dec.structure(),
                                            report.assignment));
    EXPECT_EQ(report.closest_pairs,
              closest_pairs_same_disk(dec.structure(), report.assignment));
}

TEST(Declusterer, RunMatchesDirectDecluster) {
    GridStructure gs = sample_structure();
    Declusterer dec(gs);
    for (Method m : all_methods()) {
        DeclusterOptions opt;
        opt.seed = 13;
        DeclusterReport report = dec.run(m, 8, opt);
        Assignment direct = decluster(gs, m, 8, opt);
        EXPECT_EQ(report.assignment.disk_of, direct.disk_of) << to_string(m);
    }
}

TEST(Declusterer, MinimaxReportShowsItsGuarantees) {
    Declusterer dec(sample_structure());
    DeclusterReport report = dec.run(Method::kMinimax, 16, {.seed = 21});
    std::size_t n = dec.structure().bucket_count();
    double perfect = static_cast<double>((n + 15) / 16) * 16 /
                     static_cast<double>(n);
    EXPECT_LE(report.data_balance, perfect + 1e-12);
    EXPECT_LE(report.closest_pairs, n / 20);
}

TEST(Declusterer, StructureAccessorReturnsTheSnapshot) {
    GridStructure gs = sample_structure();
    std::size_t buckets = gs.bucket_count();
    Declusterer dec(std::move(gs));
    EXPECT_EQ(dec.structure().bucket_count(), buckets);
}

}  // namespace
}  // namespace pgf
