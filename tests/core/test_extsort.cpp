// External-sort unit tests (pgf/core/extsort.hpp).
//
// The properties the out-of-core pipeline leans on:
//   - the merged output equals a std::sort of the same keyed sequence
//     (the loser tree is just a sort that never holds the data),
//   - run formation is bit-deterministic across thread counts (chunk
//     boundaries are positional, not scheduling-dependent),
//   - duplicate keys keep input order (seq tie-break),
//   - multi-pass reduction (max_fan_in smaller than the run count)
//     changes the plumbing but not the output.
#include "pgf/core/extsort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <span>
#include <vector>

#include "pgf/core/point_source.hpp"
#include "pgf/util/rng.hpp"
#include "pgf/util/temp_dir.hpp"
#include "pgf/util/thread_pool.hpp"

namespace pgf {
namespace {

using extsort::ExtSortConfig;
using extsort::ExtSorter;

Rect<2> domain2() { return Rect<2>{{{0.0, 0.0}}, {{100.0, 100.0}}}; }

std::vector<Point<2>> random_points(std::size_t n, Rng& rng) {
    std::vector<Point<2>> pts;
    pts.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        pts.push_back(
            Point<2>{{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)}});
    }
    return pts;
}

/// Drains a source completely using a fixed read-block size.
template <std::size_t D>
std::vector<Point<D>> drain(PointSource<D>& source, std::size_t block = 173) {
    std::vector<Point<D>> out;
    std::vector<Point<D>> buf(block);
    for (;;) {
        const std::size_t got =
            source.next(std::span<Point<D>>(buf.data(), buf.size()));
        if (got == 0) break;
        out.insert(out.end(), buf.begin(),
                   buf.begin() + static_cast<std::ptrdiff_t>(got));
    }
    return out;
}

/// Reference: stable std::sort of (key, position) — what any correct
/// external sort must produce.
std::vector<Point<2>> reference_sorted(const std::vector<Point<2>>& pts,
                                       unsigned bits) {
    struct Keyed {
        std::uint64_t key;
        std::size_t pos;
    };
    std::vector<Keyed> keyed;
    keyed.reserve(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
        keyed.push_back(
            {ExtSorter<2>::hilbert_key(pts[i], domain2(), bits), i});
    }
    std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
        return a.key != b.key ? a.key < b.key : a.pos < b.pos;
    });
    std::vector<Point<2>> out;
    out.reserve(pts.size());
    for (const Keyed& k : keyed) out.push_back(pts[k.pos]);
    return out;
}

TEST(ExtSorter, MatchesStdSortReferenceSingleRun) {
    Rng rng(7);
    const auto pts = random_points(5000, rng);
    VectorPointSource<2> source(pts);
    ExtSortConfig cfg;
    cfg.chunk_records = 1 << 14;  // one run
    ExtSorter<2> sorter(source, domain2(), cfg);
    const auto got = drain<2>(sorter);
    EXPECT_EQ(got, reference_sorted(pts, sorter.config().hilbert_bits));
    EXPECT_EQ(sorter.stats().records, pts.size());
    EXPECT_EQ(sorter.stats().initial_runs, 1u);
    EXPECT_EQ(sorter.stats().merge_passes, 0u);
    EXPECT_GT(sorter.stats().spill_bytes, 0u);
}

TEST(ExtSorter, MatchesStdSortReferenceAcrossRunsAndMergePasses) {
    Rng rng(8);
    const auto pts = random_points(9973, rng);
    const auto expect = [&](ExtSortConfig cfg) {
        VectorPointSource<2> source(pts);
        ExtSorter<2> sorter(source, domain2(), cfg);
        EXPECT_EQ(drain<2>(sorter),
                  reference_sorted(pts, sorter.config().hilbert_bits))
            << "chunk=" << cfg.chunk_records
            << " fan_in=" << cfg.max_fan_in;
        return sorter.stats();
    };
    // Many runs, single merge level.
    ExtSortConfig wide;
    wide.chunk_records = 512;
    auto stats = expect(wide);
    EXPECT_EQ(stats.initial_runs, (9973u + 511u) / 512u);
    EXPECT_EQ(stats.merge_passes, 0u);

    // Tiny fan-in forces reduction passes before the streamed merge.
    ExtSortConfig narrow;
    narrow.chunk_records = 512;
    narrow.max_fan_in = 3;
    stats = expect(narrow);
    EXPECT_GE(stats.merge_passes, 1u);
    EXPECT_LE(stats.final_fan_in, 3u);
}

TEST(ExtSorter, RunFormationDeterministicAcrossThreadCounts) {
    Rng rng(9);
    const auto pts = random_points(20000, rng);
    ExtSortConfig base;
    base.chunk_records = 1024;

    std::vector<Point<2>> serial;
    {
        VectorPointSource<2> source(pts);
        ExtSorter<2> sorter(source, domain2(), base);
        serial = drain<2>(sorter);
    }
    for (unsigned threads : {1u, 3u, 7u}) {
        ThreadPool pool(threads);
        ExtSortConfig cfg = base;
        cfg.pool = &pool;
        VectorPointSource<2> source(pts);
        ExtSorter<2> sorter(source, domain2(), cfg);
        EXPECT_EQ(drain<2>(sorter), serial)
            << "thread count changed the output (threads=" << threads << ")";
    }
}

TEST(ExtSorter, DuplicateKeysKeepInputOrder) {
    // Many copies of few distinct points: every copy of one point has the
    // same Hilbert key, so output order within a key is the seq order.
    std::vector<Point<2>> pts;
    for (std::size_t rep = 0; rep < 300; ++rep) {
        pts.push_back(Point<2>{{10.0, 10.0}});
        pts.push_back(Point<2>{{90.0, 90.0}});
        pts.push_back(Point<2>{{10.0, 90.0}});
    }
    ExtSortConfig cfg;
    cfg.chunk_records = 64;  // duplicates split across many runs
    cfg.max_fan_in = 2;      // and across merge passes
    VectorPointSource<2> source(pts);
    ExtSorter<2> sorter(source, domain2(), cfg);
    const auto got = drain<2>(sorter);
    ASSERT_EQ(got.size(), pts.size());
    // Per distinct point, copies must appear as one contiguous group (all
    // share one key) — and reference_sorted proves group-internal order.
    EXPECT_EQ(got, reference_sorted(pts, sorter.config().hilbert_bits));
}

TEST(ExtSorter, EmptyAndTinyInputs) {
    std::vector<Point<2>> none;
    VectorPointSource<2> empty(none);
    ExtSorter<2> sorter(empty, domain2());
    std::vector<Point<2>> buf(8);
    EXPECT_EQ(sorter.next(std::span<Point<2>>(buf.data(), buf.size())), 0u);
    EXPECT_EQ(sorter.stats().records, 0u);
    EXPECT_EQ(sorter.stats().initial_runs, 0u);

    std::vector<Point<2>> one{Point<2>{{42.0, 17.0}}};
    VectorPointSource<2> single(one);
    ExtSorter<2> sorter1(single, domain2());
    EXPECT_EQ(drain<2>(sorter1), one);
}

TEST(ExtSorter, OutputIsSortedByHilbertKey3d) {
    Rng rng(11);
    std::vector<Point<3>> pts;
    for (std::size_t i = 0; i < 4000; ++i) {
        pts.push_back(Point<3>{{rng.uniform(), rng.uniform(),
                                rng.uniform()}});
    }
    const Rect<3> domain{{{0.0, 0.0, 0.0}}, {{1.0, 1.0, 1.0}}};
    VectorPointSource<3> source(pts);
    ExtSortConfig cfg;
    cfg.chunk_records = 333;
    ExtSorter<3> sorter(source, domain, cfg);
    const auto got = drain<3>(sorter);
    ASSERT_EQ(got.size(), pts.size());
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < got.size(); ++i) {
        const std::uint64_t key = ExtSorter<3>::hilbert_key(
            got[i], domain, sorter.config().hilbert_bits);
        EXPECT_GE(key, prev) << "output not in Hilbert order at " << i;
        prev = key;
    }
}

TEST(ExtSorter, SpillsIntoCallerProvidedDirectory) {
    Rng rng(13);
    const auto pts = random_points(1000, rng);
    util::TempDir dir("pgf-extsort-test");
    ExtSortConfig cfg;
    cfg.chunk_records = 128;
    cfg.temp_dir = dir.path();
    VectorPointSource<2> source(pts);
    ExtSorter<2> sorter(source, domain2(), cfg);
    // Run files exist inside the caller's directory while merging.
    bool any = false;
    for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
        any = any || entry.is_regular_file();
    }
    EXPECT_TRUE(any) << "no spill files in the provided temp dir";
    EXPECT_EQ(drain<2>(sorter),
              reference_sorted(pts, sorter.config().hilbert_bits));
}

}  // namespace
}  // namespace pgf
