// BuildCache: memoized deterministic construction with Rng stream replay.
#include "pgf/core/build_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "pgf/util/check.hpp"
#include "pgf/util/rng.hpp"

namespace pgf {
namespace {

struct Product {
    std::vector<std::uint32_t> values;
};

BuildKey key_for(const std::string& name, const Rng& rng, std::uint64_t n) {
    return BuildKey{name, rng.state(), n, 2, 0};
}

Product build_product(Rng& rng, std::size_t n) {
    Product p;
    for (std::size_t i = 0; i < n; ++i) p.values.push_back(rng.next_u32());
    return p;
}

TEST(BuildKey, EqualityCoversEveryField) {
    Rng rng(1);
    BuildKey a = key_for("d", rng, 10);
    EXPECT_EQ(a, key_for("d", rng, 10));
    EXPECT_NE(a, key_for("e", rng, 10));
    EXPECT_NE(a, key_for("d", rng, 11));
    BuildKey b = a;
    b.dims = 3;
    EXPECT_NE(a, b);
    b = a;
    b.bucket_capacity = 8;
    EXPECT_NE(a, b);
    b = a;
    b.rng_before.state ^= 1;
    EXPECT_NE(a, b);
    EXPECT_NE(BuildKeyHash{}(a), BuildKeyHash{}(b));
}

TEST(BuildCache, HitReturnsSameObjectAndReplaysRng) {
    BuildCache cache;
    Rng rng1(42);
    auto p1 = cache.get_or_build<Product>(
        key_for("d", rng1, 16), rng1,
        [](Rng& r) { return build_product(r, 16); });
    const std::uint32_t after1 = rng1.next_u32();

    Rng rng2(42);  // same seed -> same pre-state -> cache hit
    auto p2 = cache.get_or_build<Product>(
        key_for("d", rng2, 16), rng2, [](Rng& r) -> Product {
            ADD_FAILURE() << "build function must not run on a hit";
            return build_product(r, 16);
        });
    EXPECT_EQ(p1.get(), p2.get());
    // The hit fast-forwarded rng2 past the 16 draws the build consumed.
    EXPECT_EQ(rng2.next_u32(), after1);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(BuildCache, DifferentRngPositionIsADifferentKey) {
    BuildCache cache;
    Rng rng(7);
    auto p1 = cache.get_or_build<Product>(
        key_for("d", rng, 4), rng,
        [](Rng& r) { return build_product(r, 4); });
    // Same distribution and n, but the stream has advanced: must rebuild.
    auto p2 = cache.get_or_build<Product>(
        key_for("d", rng, 4), rng,
        [](Rng& r) { return build_product(r, 4); });
    EXPECT_NE(p1.get(), p2.get());
    EXPECT_NE(p1->values, p2->values);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(BuildCache, DisabledCacheAlwaysBuilds) {
    BuildCache cache(false);
    Rng rng1(42);
    auto p1 = cache.get_or_build<Product>(
        key_for("d", rng1, 8), rng1,
        [](Rng& r) { return build_product(r, 8); });
    Rng rng2(42);
    auto p2 = cache.get_or_build<Product>(
        key_for("d", rng2, 8), rng2,
        [](Rng& r) { return build_product(r, 8); });
    EXPECT_NE(p1.get(), p2.get());
    EXPECT_EQ(p1->values, p2->values);  // deterministic, just not shared
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(BuildCache, StaleRngSnapshotRejected) {
    BuildCache cache;
    Rng rng(3);
    BuildKey key = key_for("d", rng, 4);
    rng.next_u32();  // key.rng_before no longer matches rng.state()
    EXPECT_THROW(cache.get_or_build<Product>(
                     key, rng, [](Rng& r) { return build_product(r, 4); }),
                 CheckError);
}

TEST(BuildCache, TypeMismatchRejected) {
    BuildCache cache;
    Rng rng1(5);
    BuildKey key = key_for("d", rng1, 4);
    (void)cache.get_or_build<Product>(
        key, rng1, [](Rng& r) { return build_product(r, 4); });
    Rng rng2(5);
    EXPECT_THROW(cache.get_or_build<int>(key, rng2,
                                         [](Rng&) { return 1; }),
                 CheckError);
}

TEST(BuildCache, ClearDropsEntriesAndStats) {
    BuildCache cache;
    Rng rng(9);
    (void)cache.get_or_build<Product>(
        key_for("d", rng, 4), rng,
        [](Rng& r) { return build_product(r, 4); });
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(BuildCache, SharedProductOutlivesConcurrentReaders) {
    BuildCache cache;
    Rng rng(11);
    auto p = cache.get_or_build<Product>(
        key_for("d", rng, 64), rng,
        [](Rng& r) { return build_product(r, 64); });
    // Concurrent hits from multiple threads all observe the same object.
    std::vector<std::thread> threads;
    std::vector<const Product*> seen(4, nullptr);
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&cache, &seen, t] {
            Rng local(11);
            auto h = cache.get_or_build<Product>(
                key_for("d", local, 64), local,
                [](Rng& r) { return build_product(r, 64); });
            seen[static_cast<std::size_t>(t)] = h.get();
        });
    }
    for (auto& th : threads) th.join();
    for (const Product* ptr : seen) EXPECT_EQ(ptr, p.get());
}

}  // namespace
}  // namespace pgf
