#include "pgf/core/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "pgf/util/rng.hpp"

namespace pgf {
namespace {

TEST(SweepTaskSeed, DistinctPerIndexAndStablePerCall) {
    std::set<std::uint64_t> seen;
    for (std::size_t i = 0; i < 1000; ++i) {
        std::uint64_t s = sweep_task_seed(42, i);
        EXPECT_EQ(s, sweep_task_seed(42, i)) << "seed not a pure function";
        EXPECT_TRUE(seen.insert(s).second) << "collision at index " << i;
    }
    // Different base seeds give different streams for the same index.
    EXPECT_NE(sweep_task_seed(1, 0), sweep_task_seed(2, 0));
}

TEST(SweepRunner, SerialRunnerGathersInDeclarationOrder) {
    SweepRunner runner;
    std::vector<int> configs{5, 3, 9, 1};
    auto out = runner.map(configs, [](int c, const SweepTask& task) {
        return c * 10 + static_cast<int>(task.index);
    });
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out, (std::vector<int>{50, 31, 92, 13}));
    EXPECT_EQ(runner.last().tasks, 4u);
    EXPECT_EQ(runner.last().threads, 1u);
}

TEST(SweepRunner, PooledMatchesSerialIncludingSeeds) {
    // The determinism contract: identical results vector regardless of
    // pool size, with each task drawing from its own seed stream.
    struct Cell {
        std::size_t index = 0;
        std::uint64_t seed = 0;
        std::uint64_t draw = 0;
    };
    auto body = [](int c, const SweepTask& task) {
        Rng rng(task.seed);
        // Heterogeneous cost: later tasks spin longer, so a greedy pool
        // would finish them in a scrambled order.
        std::uint64_t x = 0;
        for (int i = 0; i < c * 1000; ++i) x += rng.next_u64() >> 60;
        return Cell{task.index, task.seed, rng.next_u64() + (x & 1)};
    };
    std::vector<int> configs;
    for (int i = 0; i < 40; ++i) configs.push_back(1 + (i * 7) % 13);

    SweepRunner serial(nullptr, 99);
    auto expected = serial.map(configs, body);

    for (unsigned threads : {2u, 4u}) {
        ThreadPool pool(threads - 1);
        SweepRunner pooled(&pool, 99);
        auto got = pooled.map(configs, body);
        ASSERT_EQ(got.size(), expected.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].index, expected[i].index) << i;
            EXPECT_EQ(got[i].seed, expected[i].seed) << i;
            EXPECT_EQ(got[i].draw, expected[i].draw) << i;
        }
        EXPECT_EQ(pooled.last().threads, threads);
    }
}

TEST(SweepRunner, EveryTaskRunsExactlyOnce) {
    ThreadPool pool(3);
    SweepRunner runner(&pool, 7);
    const std::size_t n = 301;
    std::vector<std::atomic<int>> hits(n);
    runner.run_indexed(n, [&](const SweepTask& task) {
        hits[task.index].fetch_add(1, std::memory_order_relaxed);
        EXPECT_EQ(task.seed, sweep_task_seed(7, task.index));
    });
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(SweepRunner, StatsAccumulateAcrossSweeps) {
    SweepRunner runner;
    runner.run_indexed(3, [](const SweepTask&) {});
    double after_first = runner.total_wall_ms();
    EXPECT_GE(after_first, 0.0);
    EXPECT_EQ(runner.last().tasks, 3u);
    runner.run_indexed(5, [](const SweepTask&) {});
    EXPECT_EQ(runner.last().tasks, 5u);
    EXPECT_GE(runner.total_wall_ms(), after_first);
}

TEST(SweepRunner, EmptySweepIsNoop) {
    SweepRunner runner;
    std::vector<int> configs;
    auto out = runner.map(configs, [](int, const SweepTask&) { return 1; });
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(runner.last().tasks, 0u);
}

TEST(SweepRunner, MoveOnlyResultsNotRequired_DefaultConstructible) {
    // Strings exercise a non-trivial result type.
    SweepRunner runner;
    std::vector<int> configs{1, 2, 3};
    auto out = runner.map(configs, [](int c, const SweepTask&) {
        return std::string(static_cast<std::size_t>(c), 'x');
    });
    EXPECT_EQ(out, (std::vector<std::string>{"x", "xx", "xxx"}));
}

}  // namespace
}  // namespace pgf
