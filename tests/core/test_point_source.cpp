// PointSource corruption paths: the flat binary point format must turn
// every malformed input — truncation, wrong magic, wrong dimensionality,
// a lying record count — into a typed CheckError instead of silently
// streaming garbage into a build.
#include "pgf/core/point_source.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <vector>

#include "pgf/util/check.hpp"
#include "pgf/util/rng.hpp"

namespace pgf {
namespace {

class BinaryPointsTest : public ::testing::Test {
protected:
    std::filesystem::path path_ =
        std::filesystem::temp_directory_path() /
        ("pgf_binary_points_test_" + std::string(::testing::UnitTest::
                                                     GetInstance()
                                                         ->current_test_info()
                                                         ->name()) +
         ".bin");

    void TearDown() override { std::filesystem::remove(path_); }

    std::vector<Point<2>> sample(std::size_t n) {
        Rng rng(11);
        std::vector<Point<2>> pts(n);
        for (auto& p : pts) {
            p[0] = rng.uniform();
            p[1] = rng.uniform();
        }
        return pts;
    }

    void flip_byte(std::uint64_t offset, char mask) {
        std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
        f.seekg(static_cast<std::streamoff>(offset));
        char b = 0;
        f.read(&b, 1);
        b = static_cast<char>(b ^ mask);
        f.seekp(static_cast<std::streamoff>(offset));
        f.write(&b, 1);
    }
};

TEST_F(BinaryPointsTest, RoundTripStreamsInBlocks) {
    const auto pts = sample(103);
    write_binary_points<2>(path_, pts);

    BinaryFilePointSource<2> src(path_);
    EXPECT_EQ(src.remaining(), pts.size());
    std::vector<Point<2>> got;
    std::vector<Point<2>> block(16);
    for (;;) {
        const std::size_t n =
            src.next(std::span<Point<2>>(block.data(), block.size()));
        if (n == 0) break;
        got.insert(got.end(), block.begin(),
                   block.begin() + static_cast<std::ptrdiff_t>(n));
    }
    ASSERT_EQ(got.size(), pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
        EXPECT_EQ(got[i], pts[i]) << i;
    }
    EXPECT_EQ(src.remaining(), 0u);
}

TEST_F(BinaryPointsTest, MissingFileAndBadMagicAreTypedErrors) {
    EXPECT_THROW(BinaryFilePointSource<2>("/nonexistent-dir/pts.bin"),
                 CheckError);
    {
        std::ofstream out(path_, std::ios::binary);
        out << "these are not the points you are looking for";
    }
    EXPECT_THROW(BinaryFilePointSource<2>{path_}, CheckError);
}

TEST_F(BinaryPointsTest, WrongDimensionalityRejected) {
    Rng rng(3);
    std::vector<Point<3>> pts(5);
    for (auto& p : pts) {
        for (std::size_t i = 0; i < 3; ++i) p[i] = rng.uniform();
    }
    write_binary_points<3>(path_, pts);
    EXPECT_THROW(BinaryFilePointSource<2>{path_}, CheckError);
    EXPECT_NO_THROW(BinaryFilePointSource<3>{path_});
}

TEST_F(BinaryPointsTest, TruncatedHeaderRejected) {
    // Magic alone, then magic + dims: both end inside the 24-byte header.
    for (const std::uint64_t keep : {8u, 16u, 23u}) {
        write_binary_points<2>(path_, sample(4));
        std::filesystem::resize_file(path_, keep);
        EXPECT_THROW(BinaryFilePointSource<2>{path_}, CheckError)
            << "kept " << keep << " bytes";
    }
}

TEST_F(BinaryPointsTest, TruncatedBodyFailsAtReadTime) {
    const auto pts = sample(40);
    write_binary_points<2>(path_, pts);
    // Chop mid-way through the last point: the header still promises 40.
    const std::uint64_t full = std::filesystem::file_size(path_);
    std::filesystem::resize_file(path_, full - 5);

    BinaryFilePointSource<2> src(path_);
    EXPECT_EQ(src.remaining(), pts.size());
    std::vector<Point<2>> block(64);
    EXPECT_THROW(src.next(std::span<Point<2>>(block.data(), block.size())),
                 CheckError);
}

TEST_F(BinaryPointsTest, FlippedCountByteCannotOverrun) {
    const auto pts = sample(12);
    write_binary_points<2>(path_, pts);
    // Flip a high byte of the count field (offset 16..23): the header now
    // promises ~2^40 points the body does not contain. Streaming must end
    // in a typed truncation error, never a silent short read or overrun.
    flip_byte(21, 0x01);
    BinaryFilePointSource<2> src(path_);
    EXPECT_GT(src.remaining(), pts.size());
    std::vector<Point<2>> block(256);
    EXPECT_THROW(
        {
            for (;;) {
                if (src.next(std::span<Point<2>>(block.data(),
                                                 block.size())) == 0) {
                    break;
                }
            }
        },
        CheckError);
}

TEST_F(BinaryPointsTest, EmptyFileRoundTrips) {
    write_binary_points<2>(path_, std::vector<Point<2>>{});
    BinaryFilePointSource<2> src(path_);
    EXPECT_EQ(src.remaining(), 0u);
    std::vector<Point<2>> block(4);
    EXPECT_EQ(src.next(std::span<Point<2>>(block.data(), block.size())), 0u);
}

}  // namespace
}  // namespace pgf
