#include "pgf/parallel/network.hpp"

#include <gtest/gtest.h>

#include "pgf/util/check.hpp"

namespace pgf {
namespace {

TEST(Network, LatencyPlusBandwidthModel) {
    NetworkParams p;
    p.latency_s = 1e-4;
    p.bandwidth_bytes_per_s = 1e6;
    Network net(p);
    EXPECT_DOUBLE_EQ(net.transfer_time(0), 1e-4);
    EXPECT_DOUBLE_EQ(net.transfer_time(1'000'000), 1e-4 + 1.0);
}

TEST(Network, LocalMessagesAreFree) {
    Network net;
    EXPECT_DOUBLE_EQ(net.transfer_time(123456, /*remote=*/false), 0.0);
}

TEST(Network, TimeMonotoneInSize) {
    Network net;
    double prev = 0.0;
    for (std::size_t bytes = 0; bytes < 100000; bytes += 10000) {
        double t = net.transfer_time(bytes);
        EXPECT_GE(t, prev);
        prev = t;
    }
}

TEST(Network, RejectsNonsenseParams) {
    NetworkParams p;
    p.bandwidth_bytes_per_s = 0.0;
    EXPECT_THROW(Network{p}, CheckError);
    NetworkParams q;
    q.latency_s = -1.0;
    EXPECT_THROW(Network{q}, CheckError);
}

}  // namespace
}  // namespace pgf
