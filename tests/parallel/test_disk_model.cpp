#include "pgf/parallel/disk_model.hpp"

#include <gtest/gtest.h>

#include "pgf/util/check.hpp"

namespace pgf {
namespace {

DiskParams no_cache() {
    DiskParams p;
    p.cache_blocks = 0;
    return p;
}

TEST(SimulatedDisk, ColdRandomReadPaysSeekRotationTransfer) {
    DiskParams p = no_cache();
    SimulatedDisk d(p);
    double t = d.read(100);
    double expected = p.avg_seek_s + p.avg_rotation_s +
                      static_cast<double>(p.block_bytes) /
                          p.transfer_bytes_per_s;
    EXPECT_DOUBLE_EQ(t, expected);
    EXPECT_EQ(d.physical_reads(), 1u);
    EXPECT_EQ(d.cache_hits(), 0u);
}

TEST(SimulatedDisk, SequentialReadSkipsPositioning) {
    DiskParams p = no_cache();
    SimulatedDisk d(p);
    d.read(100);
    double t = d.read(101);
    EXPECT_DOUBLE_EQ(t, static_cast<double>(p.block_bytes) /
                            p.transfer_bytes_per_s);
    // Non-adjacent block seeks again.
    double t2 = d.read(50);
    EXPECT_GT(t2, t);
}

TEST(SimulatedDisk, CacheHitIsCheapAndCounted) {
    DiskParams p;
    p.cache_blocks = 8;
    SimulatedDisk d(p);
    double cold = d.read(5);
    double hot = d.read(5);
    EXPECT_DOUBLE_EQ(hot, p.cache_hit_s);
    EXPECT_LT(hot, cold);
    EXPECT_EQ(d.physical_reads(), 1u);
    EXPECT_EQ(d.cache_hits(), 1u);
}

TEST(SimulatedDisk, LruEvictsLeastRecentlyUsed) {
    DiskParams p;
    p.cache_blocks = 2;
    SimulatedDisk d(p);
    d.read(1);
    d.read(2);
    d.read(1);  // refresh 1; LRU order now [1, 2]
    d.read(3);  // evicts 2
    d.reset_counters();
    d.read(1);
    EXPECT_EQ(d.cache_hits(), 1u);
    d.read(3);
    EXPECT_EQ(d.cache_hits(), 2u);
    d.read(2);  // was evicted -> physical
    EXPECT_EQ(d.physical_reads(), 1u);
}

TEST(SimulatedDisk, DropCacheForcesPhysicalReads) {
    DiskParams p;
    p.cache_blocks = 16;
    SimulatedDisk d(p);
    d.read(7);
    d.drop_cache();
    d.reset_counters();
    d.read(7);
    EXPECT_EQ(d.physical_reads(), 1u);
    EXPECT_EQ(d.cache_hits(), 0u);
}

TEST(SimulatedDisk, DropCacheAlsoResetsSequentialState) {
    DiskParams p = no_cache();
    SimulatedDisk d(p);
    d.read(10);
    d.drop_cache();
    double t = d.read(11);  // would be sequential without the drop
    EXPECT_GT(t, static_cast<double>(p.block_bytes) / p.transfer_bytes_per_s);
}

TEST(SimulatedDisk, RejectsNonsenseParams) {
    DiskParams p;
    p.transfer_bytes_per_s = 0.0;
    EXPECT_THROW(SimulatedDisk{p}, CheckError);
    DiskParams q;
    q.block_bytes = 0;
    EXPECT_THROW(SimulatedDisk{q}, CheckError);
}

TEST(SimulatedDisk, CounterResetKeepsCacheContents) {
    DiskParams p;
    p.cache_blocks = 4;
    SimulatedDisk d(p);
    d.read(1);
    d.reset_counters();
    d.read(1);
    EXPECT_EQ(d.cache_hits(), 1u);
    EXPECT_EQ(d.physical_reads(), 0u);
}

}  // namespace
}  // namespace pgf
