#include "pgf/parallel/query_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <vector>

#include "pgf/decluster/registry.hpp"
#include "pgf/disksim/metrics.hpp"
#include "pgf/parallel/pgf_server.hpp"
#include "pgf/util/rng.hpp"
#include "pgf/workload/query_gen.hpp"
#include "../storage/temp_path.hpp"

namespace pgf {
namespace {

using Records = std::vector<GridRecord<2>>;

Records sorted_by_id(Records records) {
    std::sort(records.begin(), records.end(),
              [](const GridRecord<2>& a, const GridRecord<2>& b) {
                  return a.id < b.id;
              });
    return records;
}

void expect_same_records(const Records& got, const Records& want) {
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, want[i].id) << "record " << i;
        EXPECT_EQ(got[i].point, want[i].point) << "record " << i;
    }
}

/// A disk-backed grid file the engine serves, flushed and ready.
struct Fixture {
    Rect<2> domain{{{0.0, 0.0}}, {{1.0, 1.0}}};
    std::filesystem::path path = test::unique_temp_path("query_engine");
    PagedGridFile<2> pf;
    GridStructure gs;

    static PagedGridFile<2>::Config small_pages() {
        PagedGridFile<2>::Config cfg;
        cfg.page_size = PagedBucketStore<2>::page_size_for(8);
        return cfg;
    }

    explicit Fixture(std::size_t n_points = 2500)
        : pf(path.string(), domain, small_pages()) {
        Rng rng(3);
        for (std::uint64_t i = 0; i < n_points; ++i) {
            pf.insert({{rng.uniform(), rng.uniform()}}, i);
        }
        pf.flush();
        gs = pf.structure();
    }

    ~Fixture() { std::filesystem::remove(path); }

    Assignment assignment(std::uint32_t disks) const {
        return decluster(gs, Method::kMinimax, disks, {.seed = 7});
    }

    ServingConfig config(unsigned workers, std::size_t concurrency = 8,
                         std::size_t pool_pages = 1024) const {
        ServingConfig c;
        c.nodes = 4;
        c.workers_per_node = workers;
        c.concurrency = concurrency;
        c.pool_pages = pool_pages;
        return c;
    }

    /// A mixed workload: range queries plus partial-match queries on each
    /// single attribute (the paper's two query classes).
    std::vector<QueryEngine<2>::Query> mixed_queries(std::size_t n_rect,
                                                     std::uint64_t seed) const {
        Rng rng(seed);
        std::vector<QueryEngine<2>::Query> qs;
        for (const Rect<2>& q : square_queries(domain, 0.05, n_rect, rng)) {
            qs.push_back(q);
        }
        for (std::size_t i = 0; i < n_rect / 4; ++i) {
            PartialMatch<2> pm;
            pm.key[i % 2] = rng.uniform();
            qs.push_back(pm);
        }
        return qs;
    }

    /// Serial reference through the single-threaded paged query path.
    Records serial(const QueryEngine<2>::Query& q) const {
        if (const Rect<2>* rect = std::get_if<Rect<2>>(&q)) {
            return pf.query_records(*rect);
        }
        return pf.query_records(std::get<PartialMatch<2>>(q));
    }
};

TEST(PartitionNodeBlocks, BinsPerDiskThenConcatenatesPerNode) {
    // 2 nodes x 2 disks. Buckets in query order hit disks 3,0,3,2,0:
    // node 0 owns disks {0,1}, node 1 owns {2,3}; within a node the bins
    // come out disk-major, each bin in query-list order.
    Assignment a;
    a.num_disks = 4;
    a.disk_of = {3, 0, 3, 2, 0};
    const std::vector<std::uint32_t> buckets{0, 1, 2, 3, 4};
    auto nodes = partition_node_blocks(buckets, a, 2, 2);
    ASSERT_EQ(nodes.size(), 2u);
    EXPECT_EQ(nodes[0], (std::vector<std::uint32_t>{1, 4}));
    EXPECT_EQ(nodes[1], (std::vector<std::uint32_t>{3, 0, 2}));
}

TEST(PartitionNodeBlocks, MatchesDesResponseMetric) {
    // With one disk per node, a node's block list IS its disk's bin, so
    // the longest list must equal the Sec. 2.2 response-time metric the
    // DES server charges (computed by independent code in disksim).
    Fixture f;
    Assignment a = f.assignment(4);
    Rng rng(11);
    auto queries = square_queries(f.domain, 0.05, 30, rng);
    QueryScratch scratch;
    std::vector<std::uint32_t> buckets;
    for (const Rect<2>& q : queries) {
        f.pf.query_buckets(q, scratch, buckets);
        auto nodes = partition_node_blocks(buckets, a, 4, 1);
        std::size_t covered = 0;
        std::uint32_t worst = 0;
        for (const auto& blocks : nodes) {
            covered += blocks.size();
            worst = std::max<std::uint32_t>(
                worst, static_cast<std::uint32_t>(blocks.size()));
        }
        EXPECT_EQ(covered, buckets.size());
        EXPECT_EQ(worst, response_time(buckets, a));
    }
}

TEST(QueryEngine, MatchesSerialPathAndIsDeterministicAcrossThreadCounts) {
    Fixture f;
    Assignment a = f.assignment(4);
    auto queries = f.mixed_queries(40, 17);

    std::vector<Records> serial;
    for (const auto& q : queries) serial.push_back(sorted_by_id(f.serial(q)));

    std::vector<std::vector<Records>> per_workers;
    for (unsigned workers : {1u, 2u, 8u}) {
        QueryEngine<2> engine(f.pf, a, f.config(workers));
        auto out = engine.run(queries);
        ASSERT_EQ(out.results.size(), queries.size()) << workers;
        // Multiset equality with the serial path...
        for (std::size_t i = 0; i < queries.size(); ++i) {
            expect_same_records(sorted_by_id(out.results[i]), serial[i]);
        }
        per_workers.push_back(std::move(out.results));
    }
    // ...and the *gathered order* (node-major, block-list order) depends
    // only on (structure, assignment, query) — identical at every thread
    // count, without sorting.
    for (std::size_t w = 1; w < per_workers.size(); ++w) {
        for (std::size_t i = 0; i < queries.size(); ++i) {
            expect_same_records(per_workers[w][i], per_workers[0][i]);
        }
    }
}

TEST(QueryEngine, AgreesWithDesServerOnWorkCounters) {
    // The threaded engine and the DES simulation partition identically, so
    // their structural counters must agree exactly.
    Fixture f;
    Assignment a = f.assignment(4);
    Rng rng(19);
    auto rects = square_queries(f.domain, 0.05, 25, rng);

    ClusterConfig cc;
    cc.nodes = 4;
    ParallelGridFileServer<2, PagedGridFile<2>> server(f.pf, a, cc,
                                                       DiskBackedConfig{256});
    BatchResult des = server.execute(rects);

    QueryEngine<2> engine(f.pf, a, f.config(2));
    std::vector<QueryEngine<2>::Query> queries(rects.begin(), rects.end());
    auto out = engine.run(queries);

    EXPECT_EQ(out.report.queries, des.queries);
    EXPECT_EQ(out.report.total_blocks, des.total_blocks);
    EXPECT_EQ(out.report.records_returned, des.records_returned);
}

TEST(QueryEngine, StressTinyPoolManyThreadsMixedQueries) {
    // The TSan anchor: 4 nodes x 4 workers + dispatcher + front end over a
    // pool of only 4 frames per node (the minimum: one pinned page per
    // team worker), with a full admission window of mixed range and
    // partial-match queries — maximum contention on the pool latch, the
    // queues and the completion path. Three batches reuse the same engine.
    Fixture f(3000);
    Assignment a = f.assignment(4);
    QueryEngine<2> engine(f.pf, a, f.config(4, 16, 4));
    for (std::uint64_t round = 0; round < 3; ++round) {
        auto queries = f.mixed_queries(48, 100 + round);
        auto out = engine.run(queries);
        ASSERT_EQ(out.results.size(), queries.size());
        std::uint64_t records = 0;
        for (std::size_t i = 0; i < queries.size(); ++i) {
            Records want = sorted_by_id(f.serial(queries[i]));
            expect_same_records(sorted_by_id(out.results[i]), want);
            records += want.size();
        }
        EXPECT_EQ(out.report.records_returned, records);
        EXPECT_EQ(out.report.queries, queries.size());
        ASSERT_EQ(out.latencies_ms.size(), queries.size());
        for (double ms : out.latencies_ms) EXPECT_GE(ms, 0.0);
    }
}

TEST(QueryEngine, TotalBlocksMatchesDirectoryLookup) {
    Fixture f;
    Assignment a = f.assignment(4);
    Rng rng(23);
    auto rects = square_queries(f.domain, 0.05, 20, rng);
    std::uint64_t expected = 0;
    QueryScratch scratch;
    std::vector<std::uint32_t> buckets;
    for (const Rect<2>& q : rects) {
        f.pf.query_buckets(q, scratch, buckets);
        expected += buckets.size();
    }
    QueryEngine<2> engine(f.pf, a, f.config(2));
    std::vector<QueryEngine<2>::Query> queries(rects.begin(), rects.end());
    auto out = engine.run(queries);
    EXPECT_EQ(out.report.total_blocks, expected);
    EXPECT_GT(out.report.qps, 0.0);
    EXPECT_GE(out.report.p99_ms, out.report.p50_ms);
    EXPECT_GE(out.report.max_ms, out.report.p99_ms);
}

TEST(QueryEngine, PoolsWarmAcrossRunsAndDropCachesResets) {
    Fixture f;
    Assignment a = f.assignment(4);
    QueryEngine<2> engine(f.pf, a, f.config(2));
    Rng rng(29);
    auto rects = square_queries(f.domain, 0.08, 20, rng);
    std::vector<QueryEngine<2>::Query> queries(rects.begin(), rects.end());

    auto cold = engine.run(queries);
    std::uint64_t cold_misses = 0;
    ASSERT_EQ(cold.report.node_pools.size(), 4u);
    for (const auto& s : cold.report.node_pools) cold_misses += s.misses;
    EXPECT_GT(cold_misses, 0u);

    auto warm = engine.run(queries);
    std::uint64_t warm_misses = 0;
    std::uint64_t warm_hits = 0;
    for (const auto& s : warm.report.node_pools) {
        warm_misses += s.misses;
        warm_hits += s.hits;
    }
    EXPECT_EQ(warm_misses, 0u);  // 1024 frames/node hold the working set
    EXPECT_EQ(warm_hits, warm.report.total_blocks);

    engine.drop_caches();
    auto cold2 = engine.run(queries);
    std::uint64_t cold2_misses = 0;
    for (const auto& s : cold2.report.node_pools) cold2_misses += s.misses;
    EXPECT_EQ(cold2_misses, cold_misses);
}

TEST(QueryEngine, EmptyBatchAndMissQuery) {
    Fixture f(600);
    Assignment a = f.assignment(4);
    QueryEngine<2> engine(f.pf, a, f.config(1));
    auto out = engine.run({});
    EXPECT_EQ(out.report.queries, 0u);
    EXPECT_DOUBLE_EQ(out.report.qps, 0.0);
    // A query missing the domain fans out to zero nodes yet must still
    // complete (the dispatcher completes it directly).
    Rect<2> miss{{{5.0, 5.0}}, {{6.0, 6.0}}};
    auto out2 = engine.run({QueryEngine<2>::Query(miss)});
    EXPECT_EQ(out2.report.queries, 1u);
    EXPECT_EQ(out2.report.total_blocks, 0u);
    ASSERT_EQ(out2.results.size(), 1u);
    EXPECT_TRUE(out2.results[0].empty());
}

TEST(QueryEngine, SubmitDrainResultWithoutRun) {
    Fixture f(800);
    Assignment a = f.assignment(4);
    QueryEngine<2> engine(f.pf, a, f.config(2, 2));  // window of two
    Rng rng(31);
    auto rects = square_queries(f.domain, 0.05, 10, rng);
    std::vector<std::size_t> tickets;
    for (const Rect<2>& q : rects) tickets.push_back(engine.submit(q));
    engine.drain();
    for (std::size_t i = 0; i < rects.size(); ++i) {
        EXPECT_EQ(tickets[i], i);
        expect_same_records(sorted_by_id(engine.result(tickets[i])),
                            sorted_by_id(f.pf.query_records(rects[i])));
    }
}

TEST(QueryEngine, RejectsBadConfigs) {
    Fixture f(600);
    Assignment a = f.assignment(4);
    // Pool smaller than the team: a worker could starve pinning its page.
    EXPECT_THROW(QueryEngine<2>(f.pf, a, f.config(8, 8, 4)), CheckError);
    // Assignment width must match nodes * disks_per_node.
    ServingConfig eight = f.config(1);
    eight.nodes = 8;
    EXPECT_THROW(QueryEngine<2>(f.pf, a, eight), CheckError);
    Assignment short_a;
    short_a.num_disks = 4;
    short_a.disk_of.assign(1, 0);
    EXPECT_THROW(QueryEngine<2>(f.pf, short_a, f.config(1)), CheckError);
    ServingConfig zero = f.config(1);
    zero.concurrency = 0;
    EXPECT_THROW(QueryEngine<2>(f.pf, a, zero), CheckError);
}

TEST(QueryEngine, MultiDiskPartitionServedCorrectly) {
    // 2 nodes x 2 disks: the engine's per-node lists are disk bins
    // concatenated, not a plain per-node filter — results must still match
    // the serial path and cover every block.
    Fixture f;
    Assignment a = f.assignment(4);  // 4 disks on 2 nodes
    ServingConfig cfg;
    cfg.nodes = 2;
    cfg.disks_per_node = 2;
    cfg.workers_per_node = 2;
    cfg.concurrency = 4;
    QueryEngine<2> engine(f.pf, a, cfg);
    auto queries = f.mixed_queries(20, 37);
    auto out = engine.run(queries);
    for (std::size_t i = 0; i < queries.size(); ++i) {
        expect_same_records(sorted_by_id(out.results[i]),
                            sorted_by_id(f.serial(queries[i])));
    }
}

}  // namespace
}  // namespace pgf
