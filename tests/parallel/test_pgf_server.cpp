#include "pgf/parallel/pgf_server.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "pgf/decluster/registry.hpp"
#include "pgf/disksim/simulator.hpp"
#include "pgf/storage/paged_grid_file.hpp"
#include "pgf/util/rng.hpp"
#include "pgf/workload/query_gen.hpp"
#include "../storage/temp_path.hpp"

namespace pgf {
namespace {

struct Fixture {
    Rect<2> domain{{{0.0, 0.0}}, {{1.0, 1.0}}};
    GridFile<2> gf;
    GridStructure gs;

    explicit Fixture(std::size_t n_points = 2000)
        : gf(domain, {.bucket_capacity = 8}) {
        Rng rng(3);
        for (std::uint64_t i = 0; i < n_points; ++i) {
            gf.insert({{rng.uniform(), rng.uniform()}}, i);
        }
        gs = gf.structure();
    }

    ClusterConfig config(std::uint32_t nodes) const {
        ClusterConfig c;
        c.nodes = nodes;
        return c;
    }

    Assignment assignment(std::uint32_t nodes) const {
        return decluster(gs, Method::kMinimax, nodes, {.seed = 7});
    }
};

TEST(PgfServer, ResponseBlocksMatchSerialMetric) {
    Fixture f;
    Assignment a = f.assignment(4);
    ParallelGridFileServer<2> server(f.gf, a, f.config(4));
    Rng rng(11);
    auto queries = square_queries(f.domain, 0.05, 40, rng);
    BatchResult r = server.execute(queries);
    // The "response time by definition" column must equal the sum of the
    // Sec. 2.2 per-query metric computed by the serial simulator.
    auto qb = collect_query_buckets(f.gf, queries);
    std::uint64_t expected = 0;
    std::uint64_t expected_total = 0;
    for (const auto& buckets : qb) {
        expected += response_time(buckets, a);
        expected_total += buckets.size();
    }
    EXPECT_EQ(r.response_blocks, expected);
    EXPECT_EQ(r.total_blocks, expected_total);
    EXPECT_EQ(r.queries, 40u);
}

TEST(PgfServer, ReturnsEveryQualifyingRecordCount) {
    Fixture f;
    Assignment a = f.assignment(4);
    ParallelGridFileServer<2> server(f.gf, a, f.config(4));
    Rng rng(13);
    auto queries = square_queries(f.domain, 0.1, 25, rng);
    BatchResult r = server.execute(queries);
    std::uint64_t expected = 0;
    for (const auto& q : queries) expected += f.gf.query_records(q).size();
    EXPECT_EQ(r.records_returned, expected);
}

TEST(PgfServer, ElapsedDropsWithMoreNodes) {
    Fixture f(4000);
    Rng rng(17);
    auto queries = square_queries(f.domain, 0.05, 60, rng);
    double prev = std::numeric_limits<double>::infinity();
    for (std::uint32_t p : {2u, 4u, 8u, 16u}) {
        ParallelGridFileServer<2> server(f.gf, f.assignment(p), f.config(p));
        BatchResult r = server.execute(queries);
        EXPECT_LT(r.elapsed_s, prev) << p << " nodes";
        prev = r.elapsed_s;
        EXPECT_GT(r.elapsed_s, 0.0);
    }
}

TEST(PgfServer, CachingMakesRepeatedBatchesCheaper) {
    Fixture f;
    Assignment a = f.assignment(4);
    ClusterConfig cfg = f.config(4);
    cfg.disk.cache_blocks = 100000;  // everything fits
    ParallelGridFileServer<2> server(f.gf, a, cfg);
    Rng rng(19);
    auto queries = square_queries(f.domain, 0.05, 30, rng);
    BatchResult cold = server.execute(queries);
    BatchResult warm = server.execute(queries);
    EXPECT_LT(warm.elapsed_s, cold.elapsed_s);
    EXPECT_EQ(warm.physical_reads, 0u);
    EXPECT_GT(warm.cache_hits, 0u);
    // Dropping the caches restores cold behavior.
    server.drop_caches();
    BatchResult cold2 = server.execute(queries);
    EXPECT_EQ(cold2.physical_reads, cold.physical_reads);
}

TEST(PgfServer, CommunicationTimeGrowsWithQuerySize) {
    Fixture f;
    Assignment a = f.assignment(8);
    ParallelGridFileServer<2> server(f.gf, a, f.config(8));
    Rng rng(23);
    auto small = square_queries(f.domain, 0.01, 50, rng);
    Rng rng2(23);
    auto large = square_queries(f.domain, 0.10, 50, rng2);
    BatchResult rs = server.execute(small);
    server.drop_caches();
    BatchResult rl = server.execute(large);
    EXPECT_GT(rl.comm_time_s, rs.comm_time_s);
}

TEST(PgfServer, CoordinatorLocalTrafficIsFree) {
    // With a single node everything is local: zero communication time.
    Fixture f;
    Assignment a;
    a.num_disks = 1;
    a.disk_of.assign(f.gs.bucket_count(), 0);
    ParallelGridFileServer<2> server(f.gf, a, f.config(1));
    Rng rng(29);
    auto queries = square_queries(f.domain, 0.05, 10, rng);
    BatchResult r = server.execute(queries);
    EXPECT_DOUBLE_EQ(r.comm_time_s, 0.0);
    EXPECT_GT(r.elapsed_s, 0.0);
}

TEST(PgfServer, EmptyBatchAndMissQueries) {
    Fixture f;
    Assignment a = f.assignment(2);
    ParallelGridFileServer<2> server(f.gf, a, f.config(2));
    BatchResult r = server.execute({});
    EXPECT_EQ(r.queries, 0u);
    EXPECT_DOUBLE_EQ(r.elapsed_s, 0.0);
    // A query missing the domain entirely still costs translate time.
    Rect<2> miss{{{5.0, 5.0}}, {{6.0, 6.0}}};
    BatchResult rm = server.execute({miss});
    EXPECT_EQ(rm.total_blocks, 0u);
    EXPECT_GT(rm.elapsed_s, 0.0);
}

TEST(PgfServer, RejectsMismatchedAssignment) {
    Fixture f;
    Assignment a = f.assignment(4);
    EXPECT_THROW(ParallelGridFileServer<2>(f.gf, a, f.config(8)), CheckError);
    Assignment short_a;
    short_a.num_disks = 4;
    short_a.disk_of.assign(1, 0);
    EXPECT_THROW(ParallelGridFileServer<2>(f.gf, short_a, f.config(4)),
                 CheckError);
}

TEST(PgfServer, DeterministicAcrossRuns) {
    Fixture f;
    Assignment a = f.assignment(4);
    Rng rng(31);
    auto queries = square_queries(f.domain, 0.05, 20, rng);
    ParallelGridFileServer<2> s1(f.gf, a, f.config(4));
    ParallelGridFileServer<2> s2(f.gf, a, f.config(4));
    BatchResult r1 = s1.execute(queries);
    BatchResult r2 = s2.execute(queries);
    EXPECT_DOUBLE_EQ(r1.elapsed_s, r2.elapsed_s);
    EXPECT_DOUBLE_EQ(r1.comm_time_s, r2.comm_time_s);
    EXPECT_EQ(r1.response_blocks, r2.response_blocks);
}

TEST(PgfServer, MultipleDisksPerNodeSpeedUpService) {
    // The paper's machine: seven disks per processor. With the same node
    // count, more disks per node must not slow the batch down, and the
    // per-disk response metric must match the serial computation against
    // the wider assignment.
    Fixture f(4000);
    Rng rng(37);
    auto queries = square_queries(f.domain, 0.05, 40, rng);

    ClusterConfig one = f.config(4);
    Assignment a4 = f.assignment(4);
    ParallelGridFileServer<2> s1(f.gf, a4, one);
    BatchResult r1 = s1.execute(queries);

    ClusterConfig seven = f.config(4);
    seven.disks_per_node = 7;
    Assignment a28 = decluster(f.gs, Method::kMinimax, 28, {.seed = 7});
    ParallelGridFileServer<2> s7(f.gf, a28, seven);
    BatchResult r7 = s7.execute(queries);

    EXPECT_LT(r7.elapsed_s, r1.elapsed_s);
    auto qb = collect_query_buckets(f.gf, queries);
    std::uint64_t expected = 0;
    for (const auto& buckets : qb) expected += response_time(buckets, a28);
    EXPECT_EQ(r7.response_blocks, expected);
    EXPECT_EQ(r7.records_returned, r1.records_returned);
}

TEST(PgfServer, ConcurrencyOverlapsIndependentQueries) {
    Fixture f(4000);
    Assignment a = f.assignment(8);
    Rng rng(41);
    auto queries = square_queries(f.domain, 0.03, 60, rng);

    ParallelGridFileServer<2> seq(f.gf, a, f.config(8));
    BatchResult r1 = seq.execute(queries, 1);
    ParallelGridFileServer<2> par(f.gf, a, f.config(8));
    BatchResult r4 = par.execute(queries, 4);

    // Same work is done either way...
    EXPECT_EQ(r4.queries, r1.queries);
    EXPECT_EQ(r4.total_blocks, r1.total_blocks);
    EXPECT_EQ(r4.records_returned, r1.records_returned);
    EXPECT_EQ(r4.response_blocks, r1.response_blocks);
    // ...but overlapping queries finish sooner.
    EXPECT_LT(r4.elapsed_s, r1.elapsed_s);
}

TEST(PgfServer, ConcurrencyBoundedByDiskContention) {
    // All buckets on one node's single disk: concurrency cannot beat the
    // serialized disk service by much.
    Fixture f(2000);
    Assignment all_one;
    all_one.num_disks = 2;
    all_one.disk_of.assign(f.gs.bucket_count(), 1);
    Rng rng(43);
    auto queries = square_queries(f.domain, 0.05, 30, rng);
    ClusterConfig cfg = f.config(2);
    cfg.disk.cache_blocks = 0;  // force physical reads
    ParallelGridFileServer<2> seq(f.gf, all_one, cfg);
    BatchResult r1 = seq.execute(queries, 1);
    ParallelGridFileServer<2> par(f.gf, all_one, cfg);
    BatchResult r8 = par.execute(queries, 8);
    // The disk serializes everything; only translate/network overlap.
    EXPECT_GT(r8.elapsed_s, 0.8 * r1.elapsed_s);
}

TEST(PgfServer, ZeroConcurrencyRejected) {
    Fixture f(500);
    Assignment a = f.assignment(2);
    ParallelGridFileServer<2> server(f.gf, a, f.config(2));
    EXPECT_THROW(server.execute({}, 0), CheckError);
}

/// The in-memory fixture plus a disk-backed twin loaded with the same
/// insertion sequence — identical structure by the backend-equivalence
/// contract, so the two servers must report the same structural columns.
struct DiskBackedFixture : Fixture {
    std::filesystem::path path =
        test::unique_temp_path("pgf_server_backing");
    PagedGridFile<2> pf;

    static PagedGridFile<2>::Config small_pages() {
        PagedGridFile<2>::Config cfg;
        cfg.page_size = PagedBucketStore<2>::page_size_for(8);
        return cfg;
    }

    explicit DiskBackedFixture(std::size_t n_points = 2000)
        : Fixture(n_points), pf(path.string(), domain, small_pages()) {
        Rng rng(3);  // replay the Fixture's exact insertion sequence
        for (std::uint64_t i = 0; i < n_points; ++i) {
            pf.insert({{rng.uniform(), rng.uniform()}}, i);
        }
        pf.flush();
    }

    ~DiskBackedFixture() { std::filesystem::remove(path); }
};

TEST(PgfServer, DiskBackedMatchesInMemoryTwin) {
    DiskBackedFixture f;
    ASSERT_EQ(f.pf.bucket_count(), f.gf.bucket_count());
    Assignment a = f.assignment(4);
    Rng rng(47);
    auto queries = square_queries(f.domain, 0.05, 40, rng);

    ParallelGridFileServer<2> mem(f.gf, a, f.config(4));
    BatchResult rm = mem.execute(queries);

    ParallelGridFileServer<2, PagedGridFile<2>> disk(
        f.pf, a, f.config(4), DiskBackedConfig{256});
    EXPECT_TRUE(disk.disk_backed());
    BatchResult rd = disk.execute(queries);

    // Structural columns are backend-independent by construction.
    EXPECT_EQ(rd.queries, rm.queries);
    EXPECT_EQ(rd.response_blocks, rm.response_blocks);
    EXPECT_EQ(rd.total_blocks, rm.total_blocks);
    EXPECT_EQ(rd.records_returned, rm.records_returned);

    // I/O counters now come from the real pools: every block request was
    // one pool fetch, so hits + misses account for every read exactly.
    EXPECT_GT(rd.physical_reads, 0u);
    EXPECT_EQ(rd.physical_reads + rd.cache_hits, rd.total_blocks);
}

TEST(PgfServer, DiskBackedPoolsWarmAcrossBatchesAndDrop) {
    DiskBackedFixture f;
    Assignment a = f.assignment(2);
    Rng rng(53);
    auto queries = square_queries(f.domain, 0.08, 30, rng);
    // Pools big enough that the working set stays resident.
    ParallelGridFileServer<2, PagedGridFile<2>> server(
        f.pf, a, f.config(2), DiskBackedConfig{4096});
    BatchResult cold = server.execute(queries);
    EXPECT_GT(cold.physical_reads, 0u);
    BatchResult warm = server.execute(queries);
    EXPECT_EQ(warm.physical_reads, 0u);
    EXPECT_EQ(warm.cache_hits, warm.total_blocks);
    // drop_caches reopens the per-node pools empty.
    server.drop_caches();
    BatchResult cold2 = server.execute(queries);
    EXPECT_EQ(cold2.physical_reads, cold.physical_reads);
}

TEST(PgfServer, DiskBackedTinyPoolThrashes) {
    DiskBackedFixture f;
    Assignment a = f.assignment(2);
    Rng rng(59);
    auto queries = square_queries(f.domain, 0.08, 30, rng);
    ParallelGridFileServer<2, PagedGridFile<2>> big(
        f.pf, a, f.config(2), DiskBackedConfig{4096});
    (void)big.execute(queries);
    BatchResult warm = big.execute(queries);
    ParallelGridFileServer<2, PagedGridFile<2>> tiny(
        f.pf, a, f.config(2), DiskBackedConfig{2});
    (void)tiny.execute(queries);
    BatchResult thrashed = tiny.execute(queries);
    // Two frames per node cannot hold the working set: the warm batch
    // still pays physical reads, unlike the big pool.
    EXPECT_EQ(warm.physical_reads, 0u);
    EXPECT_GT(thrashed.physical_reads, 0u);
    // Structure-derived columns stay identical regardless of pool size.
    EXPECT_EQ(thrashed.response_blocks, warm.response_blocks);
    EXPECT_EQ(thrashed.records_returned, warm.records_returned);
}

TEST(PgfServer, DiskBackedRejectsZeroPoolPages) {
    DiskBackedFixture f(500);
    Assignment a = f.assignment(2);
    EXPECT_THROW((ParallelGridFileServer<2, PagedGridFile<2>>(
                     f.pf, a, f.config(2), DiskBackedConfig{0})),
                 CheckError);
}

TEST(PgfServer, MultiDiskAssignmentWidthValidated) {
    Fixture f;
    ClusterConfig cfg = f.config(4);
    cfg.disks_per_node = 7;
    Assignment narrow = f.assignment(4);  // targets 4 disks, cluster has 28
    EXPECT_THROW(ParallelGridFileServer<2>(f.gf, narrow, cfg), CheckError);
    cfg.disks_per_node = 0;
    Assignment a = f.assignment(4);
    EXPECT_THROW(ParallelGridFileServer<2>(f.gf, a, cfg), CheckError);
}

}  // namespace
}  // namespace pgf
