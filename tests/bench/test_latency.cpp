#include "latency.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pgf::bench {
namespace {

TEST(LatencyHistogram, EmptyReportsZeros) {
    LatencyHistogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.count(), 0u);
    // Empty runs report zeros instead of throwing (unlike raw
    // pgf::quantile) so a zero-query sweep cell doesn't abort the bench.
    EXPECT_DOUBLE_EQ(h.p50(), 0.0);
    EXPECT_DOUBLE_EQ(h.p99(), 0.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, SingleSampleIsEveryQuantile) {
    LatencyHistogram h;
    h.record(42.5);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 42.5);
    EXPECT_DOUBLE_EQ(h.p50(), 42.5);
    EXPECT_DOUBLE_EQ(h.p95(), 42.5);
    EXPECT_DOUBLE_EQ(h.p99(), 42.5);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 42.5);
    EXPECT_DOUBLE_EQ(h.min(), 42.5);
    EXPECT_DOUBLE_EQ(h.max(), 42.5);
    EXPECT_DOUBLE_EQ(h.mean(), 42.5);
}

TEST(LatencyHistogram, ExactQuantilesOnKnownDistribution) {
    // 1..101: pos = q * 100 lands on integers for the serving percentiles,
    // so the expected values are exact order statistics, no interpolation.
    LatencyHistogram h;
    for (int i = 101; i >= 1; --i) h.record(static_cast<double>(i));
    EXPECT_EQ(h.count(), 101u);
    EXPECT_DOUBLE_EQ(h.p50(), 51.0);
    EXPECT_DOUBLE_EQ(h.p95(), 96.0);
    EXPECT_DOUBLE_EQ(h.p99(), 100.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 101.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 101.0);
    EXPECT_DOUBLE_EQ(h.mean(), 51.0);
}

TEST(LatencyHistogram, InterpolatesBetweenOrderStatistics) {
    LatencyHistogram h;
    h.record_all({1.0, 2.0, 3.0, 4.0});  // pos = q * 3
    EXPECT_DOUBLE_EQ(h.p50(), 2.5);
    EXPECT_DOUBLE_EQ(h.quantile(0.25), 1.75);
    EXPECT_DOUBLE_EQ(h.quantile(0.75), 3.25);
}

TEST(LatencyHistogram, MergeEqualsRecordingEverything) {
    LatencyHistogram a;
    LatencyHistogram b;
    LatencyHistogram all;
    for (int i = 0; i < 50; ++i) {
        const double v = static_cast<double>((i * 37) % 101);
        (i % 2 == 0 ? a : b).record(v);
        all.record(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    for (double q : {0.0, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0}) {
        EXPECT_DOUBLE_EQ(a.quantile(q), all.quantile(q)) << q;
    }
    EXPECT_DOUBLE_EQ(a.mean(), all.mean());
}

TEST(LatencyHistogram, RecordAllAppends) {
    LatencyHistogram h;
    h.record(5.0);
    h.record_all({1.0, 9.0});
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 9.0);
    EXPECT_DOUBLE_EQ(h.p50(), 5.0);
}

}  // namespace
}  // namespace pgf::bench
