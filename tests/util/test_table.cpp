#include "pgf/util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "pgf/util/check.hpp"

namespace pgf {
namespace {

TEST(FormatDouble, FixedPrecision) {
    EXPECT_EQ(format_double(3.14159, 2), "3.14");
    EXPECT_EQ(format_double(3.0, 2), "3.00");
    EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(FormatDouble, TrimmedRemovesTrailingZeros) {
    EXPECT_EQ(format_double(3.10, 4, true), "3.1");
    EXPECT_EQ(format_double(3.0, 4, true), "3");
    EXPECT_EQ(format_double(0.25, 6, true), "0.25");
}

TEST(TextTable, AlignsColumns) {
    TextTable t({"name", "value"});
    t.add("dm", 1);
    t.add("hilbert", 123);
    std::string s = t.str();
    std::istringstream in(s);
    std::string header, rule, row1, row2;
    std::getline(in, header);
    std::getline(in, rule);
    std::getline(in, row1);
    std::getline(in, row2);
    EXPECT_EQ(header.size(), row1.size());
    EXPECT_EQ(row1.size(), row2.size());
    EXPECT_EQ(rule.find_first_not_of('-'), std::string::npos);
}

TEST(TextTable, AddMixedCellTypes) {
    TextTable t({"a", "b", "c"});
    t.add("x", 42, 2.5);
    EXPECT_EQ(t.rows(), 1u);
    std::string s = t.str();
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("2.50"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
    TextTable t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(TextTable, HeaderlessTableRenders) {
    TextTable t;
    t.add_row({"1", "2"});
    std::string s = t.str();
    EXPECT_EQ(s, "1  2\n");
}

TEST(TextTable, CsvRoundTrip) {
    auto path = std::filesystem::temp_directory_path() / "pgf_table_test.csv";
    TextTable t({"m", "response"});
    t.add(4, 10.5);
    t.add(8, 5.25);
    ASSERT_TRUE(t.write_csv(path.string()));
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "m,response");
    std::getline(in, line);
    EXPECT_EQ(line, "4,10.50");
    std::filesystem::remove(path);
}

TEST(TextTable, CsvEscapesSpecialCharacters) {
    auto path = std::filesystem::temp_directory_path() / "pgf_table_esc.csv";
    TextTable t({"note"});
    t.add_row({"a,b \"quoted\""});
    ASSERT_TRUE(t.write_csv(path.string()));
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);  // header
    std::getline(in, line);
    EXPECT_EQ(line, "\"a,b \"\"quoted\"\"\"");
    std::filesystem::remove(path);
}

TEST(TextTable, CsvToUnwritablePathFails) {
    TextTable t({"x"});
    EXPECT_FALSE(t.write_csv("/nonexistent-dir/impossible.csv"));
}

TEST(CsvWriter, StreamsRows) {
    auto path = std::filesystem::temp_directory_path() / "pgf_csvw_test.csv";
    {
        CsvWriter w(path.string(), {"a", "b"});
        w.write_row({1.0, 2.5});
        w.write_row(std::vector<std::string>{"x", "y"});
    }
    std::ifstream in(path);
    std::string l1, l2, l3;
    std::getline(in, l1);
    std::getline(in, l2);
    std::getline(in, l3);
    EXPECT_EQ(l1, "a,b");
    EXPECT_EQ(l2, "1,2.5");
    EXPECT_EQ(l3, "x,y");
    std::filesystem::remove(path);
}

TEST(CsvWriter, ThrowsOnUnopenablePath) {
    EXPECT_THROW(CsvWriter("/nonexistent-dir/impossible.csv", {"x"}),
                 CheckError);
}

}  // namespace
}  // namespace pgf
