#include "pgf/util/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "pgf/util/check.hpp"

namespace pgf {
namespace {

TEST(BoundedQueue, FifoSingleThread) {
    BoundedMpmcQueue<int> q(8);
    EXPECT_EQ(q.capacity(), 8u);
    for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
    EXPECT_EQ(q.size(), 5u);
    int v = -1;
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(q.pop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, RejectsZeroCapacity) {
    EXPECT_THROW(BoundedMpmcQueue<int>(0), CheckError);
}

TEST(BoundedQueue, FullQueueBlocksProducerUntilPop) {
    BoundedMpmcQueue<int> q(2);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    // The third push must block until a slot frees: the flag cannot be set
    // before this thread pops (no timing dependence — push() returns only
    // after the pop makes room).
    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        EXPECT_TRUE(q.push(3));
        pushed.store(true);
    });
    EXPECT_FALSE(pushed.load());
    int v = 0;
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, 1);
    producer.join();
    EXPECT_TRUE(pushed.load());
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, 2);
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, 3);
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
    BoundedMpmcQueue<int> q(4);
    std::atomic<bool> returned{false};
    std::thread consumer([&] {
        int v = 0;
        EXPECT_FALSE(q.pop(v));  // woken by close, nothing to drain
        returned.store(true);
    });
    q.close();
    consumer.join();
    EXPECT_TRUE(returned.load());
}

TEST(BoundedQueue, CloseDrainsRemainingItemsFirst) {
    BoundedMpmcQueue<int> q(4);
    EXPECT_TRUE(q.push(10));
    EXPECT_TRUE(q.push(11));
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(q.push(12));  // no admissions after close...
    int v = 0;
    ASSERT_TRUE(q.pop(v));  // ...but queued items still come out
    EXPECT_EQ(v, 10);
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, 11);
    EXPECT_FALSE(q.pop(v));
}

TEST(BoundedQueue, MpmcStressDeliversEveryItemExactlyOnce) {
    // Many producers and consumers over a queue much smaller than the item
    // count, so both the not_full and not_empty waits are exercised. Every
    // pushed value must come out exactly once.
    constexpr int kProducers = 4;
    constexpr int kConsumers = 4;
    constexpr int kPerProducer = 500;
    BoundedMpmcQueue<int> q(3);
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&q, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                ASSERT_TRUE(q.push(p * kPerProducer + i));
            }
        });
    }
    std::vector<std::vector<int>> received(kConsumers);
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&q, &received, c] {
            int v = 0;
            while (q.pop(v)) {
                received[static_cast<std::size_t>(c)].push_back(v);
            }
        });
    }
    for (auto& t : producers) t.join();
    q.close();
    for (auto& t : consumers) t.join();

    std::multiset<int> all;
    for (const auto& r : received) all.insert(r.begin(), r.end());
    ASSERT_EQ(all.size(),
              static_cast<std::size_t>(kProducers) * kPerProducer);
    for (int x = 0; x < kProducers * kPerProducer; ++x) {
        EXPECT_EQ(all.count(x), 1u) << x;
    }
}

TEST(BoundedQueue, PerProducerOrderPreserved) {
    // FIFO per producer: a single consumer must see each producer's items
    // in push order even when producers interleave.
    constexpr int kProducers = 3;
    constexpr int kPerProducer = 400;
    BoundedMpmcQueue<std::pair<int, int>> q(2);
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&q, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                ASSERT_TRUE(q.push({p, i}));
            }
        });
    }
    std::vector<int> next(kProducers, 0);
    std::thread consumer([&] {
        std::pair<int, int> v;
        while (q.pop(v)) {
            const auto p = static_cast<std::size_t>(v.first);
            EXPECT_EQ(v.second, next[p]) << "producer " << v.first;
            next[p] = v.second + 1;
        }
    });
    for (auto& t : producers) t.join();
    q.close();
    consumer.join();
    for (const int n : next) EXPECT_EQ(n, kPerProducer);
}

}  // namespace
}  // namespace pgf
