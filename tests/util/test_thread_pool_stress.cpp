// Stress tests for ThreadPool: rapid task turnover across many sizes,
// several pools driven concurrently from independent threads, and the
// bit-identical pool-of-1 vs pool-of-N determinism contract the
// declustering sweeps rely on. These are the tests the TSan preset runs to
// certify the wakeup/completion protocol data-race-free.
#include "pgf/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "pgf/util/rng.hpp"

namespace pgf {
namespace {

TEST(ThreadPoolStress, AlternatingSizesCoverEveryIndex) {
    // Back-to-back dispatches with wildly different n exercise the
    // generation counter: a worker that oversleeps one task must not
    // double-claim chunks of the next.
    ThreadPool pool(3);
    const std::size_t sizes[] = {1, 4097, 2, 63, 1024, 1, 7, 511};
    std::atomic<std::uint64_t> sum{0};
    std::uint64_t expected = 0;
    for (int round = 0; round < 300; ++round) {
        const std::size_t n = sizes[static_cast<std::size_t>(round) %
                                    (sizeof(sizes) / sizeof(sizes[0]))];
        pool.parallel_for(n, [&](std::size_t begin, std::size_t end) {
            std::uint64_t local = 0;
            for (std::size_t i = begin; i < end; ++i) local += i + 1;
            sum.fetch_add(local, std::memory_order_relaxed);
        });
        expected += static_cast<std::uint64_t>(n) * (n + 1) / 2;
    }
    EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPoolStress, IndependentPoolsRunConcurrently) {
    // One pool per driver thread: pools must not share any hidden global
    // state, and each pool's protocol must hold while siblings churn.
    constexpr int kDrivers = 4;
    std::vector<std::uint64_t> totals(kDrivers, 0);
    std::vector<std::thread> drivers;
    drivers.reserve(kDrivers);
    for (int t = 0; t < kDrivers; ++t) {
        drivers.emplace_back([t, &totals] {
            ThreadPool pool(2);
            std::atomic<std::uint64_t> total{0};
            for (int round = 0; round < 200; ++round) {
                const std::size_t n =
                    17 + static_cast<std::size_t>((t * 31 + round) % 400);
                pool.parallel_for(n, [&](std::size_t begin, std::size_t end) {
                    total.fetch_add(end - begin, std::memory_order_relaxed);
                });
            }
            totals[static_cast<std::size_t>(t)] = total.load();
        });
    }
    std::uint64_t expected = 0;
    for (int t = 0; t < kDrivers; ++t) {
        for (int round = 0; round < 200; ++round) {
            expected += 17 + static_cast<std::uint64_t>((t * 31 + round) % 400);
        }
    }
    for (auto& d : drivers) d.join();
    std::uint64_t got = 0;
    for (std::uint64_t v : totals) got += v;
    EXPECT_EQ(got, expected);
}

TEST(ThreadPoolStress, ArgminDeterministicAcrossPoolSizes) {
    // parallel argmin (map_reduce) must return the same winner for a pool
    // of 1 and a pool of N, over many shuffled inputs — the determinism
    // guarantee that keeps the minimax declustering reproducible.
    struct Best {
        double val;
        std::size_t idx;
    };
    Rng rng(99);
    for (int round = 0; round < 20; ++round) {
        const std::size_t n = 500 + static_cast<std::size_t>(round) * 137;
        std::vector<double> xs(n);
        for (auto& x : xs) x = rng.uniform();
        // Plant duplicated minima to make tie-breaking observable.
        const std::size_t a = n / 3, b = 2 * n / 3;
        xs[a] = xs[b] = -1.0;

        Best results[2];
        unsigned sizes[2] = {1u, 4u};
        for (int which = 0; which < 2; ++which) {
            ThreadPool pool(sizes[which]);
            results[which] = pool.map_reduce(
                n, Best{1e300, n},
                [&](std::size_t begin, std::size_t end) {
                    Best local{1e300, n};
                    for (std::size_t i = begin; i < end; ++i) {
                        if (xs[i] < local.val) local = Best{xs[i], i};
                    }
                    return local;
                },
                [](const Best& acc, const Best& v) {
                    return v.val < acc.val ? v : acc;
                });
        }
        ASSERT_EQ(results[0].idx, results[1].idx) << "round " << round;
        ASSERT_EQ(results[0].idx, a);
        ASSERT_DOUBLE_EQ(results[0].val, results[1].val);
    }
}

TEST(ThreadPoolStress, ZeroAndOneItemUnderChurn) {
    ThreadPool pool(5);
    std::atomic<int> ones{0};
    for (int round = 0; round < 500; ++round) {
        pool.parallel_for(0, [&](std::size_t, std::size_t) { ones += 1000; });
        pool.parallel_for(1, [&](std::size_t begin, std::size_t end) {
            EXPECT_EQ(begin, 0u);
            EXPECT_EQ(end, 1u);
            ones.fetch_add(1, std::memory_order_relaxed);
        });
    }
    EXPECT_EQ(ones.load(), 500);
}

}  // namespace
}  // namespace pgf
