#include "pgf/util/points_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "pgf/util/check.hpp"

namespace pgf {
namespace {

class PointsIoTest : public ::testing::Test {
protected:
    std::filesystem::path path_ =
        std::filesystem::temp_directory_path() / "pgf_points_io_test.csv";

    void TearDown() override { std::filesystem::remove(path_); }

    void write_file(const std::string& content) {
        std::ofstream out(path_);
        out << content;
    }
};

TEST_F(PointsIoTest, RoundTrip) {
    std::vector<std::vector<double>> rows{
        {1.0, 2.0, 3.0}, {-4.5, 0.0, 1e6}, {0.001, 7.0, -8.25}};
    write_csv_points(path_.string(), rows);
    auto back = read_csv_points(path_.string());
    ASSERT_EQ(back.size(), rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        ASSERT_EQ(back[r].size(), 3u);
        for (std::size_t c = 0; c < 3; ++c) {
            EXPECT_DOUBLE_EQ(back[r][c], rows[r][c]);
        }
    }
}

TEST_F(PointsIoTest, SkipsBlanksCommentsAndHeader) {
    write_file(
        "x, y\n"
        "# a comment\n"
        "\n"
        "1.5, 2.5\n"
        "  3.0 ,4.0  \n");
    auto rows = read_csv_points(path_.string());
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_DOUBLE_EQ(rows[0][0], 1.5);
    EXPECT_DOUBLE_EQ(rows[1][1], 4.0);
}

TEST_F(PointsIoTest, RejectsNonNumericDataRow) {
    write_file("1,2\nfoo,bar\n");
    EXPECT_THROW(read_csv_points(path_.string()), CheckError);
}

TEST_F(PointsIoTest, RejectsRaggedRows) {
    write_file("1,2\n3,4,5\n");
    EXPECT_THROW(read_csv_points(path_.string()), CheckError);
}

TEST_F(PointsIoTest, RejectsMissingFile) {
    EXPECT_THROW(read_csv_points("/nonexistent/points.csv"), CheckError);
    EXPECT_THROW(write_csv_points("/nonexistent/points.csv", {}), CheckError);
}

TEST_F(PointsIoTest, AlternateDelimiter) {
    write_file("1;2;3\n4;5;6\n");
    auto rows = read_csv_points(path_.string(), ';');
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_DOUBLE_EQ(rows[1][2], 6.0);
}

TEST_F(PointsIoTest, EmptyFileGivesNoRows) {
    write_file("# only a comment\n");
    EXPECT_TRUE(read_csv_points(path_.string()).empty());
}

TEST_F(PointsIoTest, SingleColumn) {
    write_file("1\n2\n3\n");
    auto rows = read_csv_points(path_.string());
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].size(), 1u);
}

TEST_F(PointsIoTest, ScientificNotationAndNegatives) {
    write_file("-1e-3,+2.5E2\n");
    auto rows = read_csv_points(path_.string());
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_DOUBLE_EQ(rows[0][0], -0.001);
    EXPECT_DOUBLE_EQ(rows[0][1], 250.0);
}

}  // namespace
}  // namespace pgf
