#include "pgf/util/check.hpp"

#include <gtest/gtest.h>

#include <string>

namespace pgf {
namespace {

TEST(Check, PassingConditionIsSilent) {
    EXPECT_NO_THROW(PGF_CHECK(1 + 1 == 2, "math"));
    EXPECT_NO_THROW(PGF_REQUIRE(true));
}

TEST(Check, FailingConditionThrowsCheckError) {
    EXPECT_THROW(PGF_CHECK(false, "nope"), CheckError);
    EXPECT_THROW(PGF_REQUIRE(false), CheckError);
}

TEST(Check, MessageContainsExpressionLocationAndText) {
    try {
        PGF_CHECK(2 > 3, "two is not bigger");
        FAIL() << "should have thrown";
    } catch (const CheckError& e) {
        std::string what = e.what();
        EXPECT_NE(what.find("2 > 3"), std::string::npos);
        EXPECT_NE(what.find("test_check.cpp"), std::string::npos);
        EXPECT_NE(what.find("two is not bigger"), std::string::npos);
    }
}

TEST(Check, IsLogicError) {
    try {
        PGF_CHECK(false, "x");
    } catch (const std::logic_error&) {
        SUCCEED();
        return;
    }
    FAIL() << "CheckError must derive from std::logic_error";
}

TEST(Check, ConditionEvaluatedOnce) {
    int calls = 0;
    auto counted = [&]() {
        ++calls;
        return true;
    };
    PGF_CHECK(counted(), "side effects");
    EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace pgf
