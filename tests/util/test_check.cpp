#include "pgf/util/check.hpp"

#include <gtest/gtest.h>

#include <string>

namespace pgf {
namespace {

TEST(Check, PassingConditionIsSilent) {
    EXPECT_NO_THROW(PGF_CHECK(1 + 1 == 2, "math"));
    EXPECT_NO_THROW(PGF_REQUIRE(true));
}

TEST(Check, FailingConditionThrowsCheckError) {
    EXPECT_THROW(PGF_CHECK(false, "nope"), CheckError);
    EXPECT_THROW(PGF_REQUIRE(false), CheckError);
}

TEST(Check, MessageContainsExpressionLocationAndText) {
    try {
        PGF_CHECK(2 > 3, "two is not bigger");
        FAIL() << "should have thrown";
    } catch (const CheckError& e) {
        std::string what = e.what();
        EXPECT_NE(what.find("2 > 3"), std::string::npos);
        EXPECT_NE(what.find("test_check.cpp"), std::string::npos);
        EXPECT_NE(what.find("two is not bigger"), std::string::npos);
    }
}

TEST(Check, IsLogicError) {
    try {
        PGF_CHECK(false, "x");
    } catch (const std::logic_error&) {
        SUCCEED();
        return;
    }
    FAIL() << "CheckError must derive from std::logic_error";
}

TEST(CheckReportScope, AttachesContextToFailure) {
    try {
        detail::CheckReportScope scope([] {
            return std::string("validator report: 3 findings");
        });
        PGF_CHECK(false, "boom");
        FAIL() << "should have thrown";
    } catch (const CheckError& e) {
        EXPECT_EQ(e.report(), "validator report: 3 findings");
        EXPECT_NE(std::string(e.what()).find("validator report: 3 findings"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    }
}

TEST(CheckReportScope, NestedScopesRenderInnermostFirst) {
    try {
        detail::CheckReportScope outer([] { return std::string("outer"); });
        detail::CheckReportScope inner([] { return std::string("inner"); });
        PGF_CHECK(false, "nested");
        FAIL() << "should have thrown";
    } catch (const CheckError& e) {
        EXPECT_EQ(e.report(), "inner\nouter");
    }
}

TEST(CheckReportScope, NoContextOnceScopeEnds) {
    { detail::CheckReportScope scope([] { return std::string("gone"); }); }
    try {
        PGF_CHECK(false, "after scope");
        FAIL() << "should have thrown";
    } catch (const CheckError& e) {
        EXPECT_TRUE(e.report().empty());
        EXPECT_EQ(std::string(e.what()).find("gone"), std::string::npos);
    }
}

TEST(Check, ConditionEvaluatedOnce) {
    int calls = 0;
    auto counted = [&]() {
        ++calls;
        return true;
    };
    PGF_CHECK(counted(), "side effects");
    EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace pgf
