// Behavioral tests for the annotated mutex wrappers (pgf/util/annotations).
// The compile-time half of the contract — guarded members rejected without
// the latch — is enforced by the clang-threadsafety CI job; these tests pin
// the runtime half: the wrappers really lock, MutexLock::wait really waits.
#include "pgf/util/annotations.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace pgf {
namespace {

TEST(AnnotationsTest, MutexLockSerializesIncrements) {
    constexpr int kThreads = 4;
    constexpr int kIters = 20000;
    // (GUARDED_BY only applies to members/globals, so a local counter is
    // outside the analysis — the test checks the lock actually excludes.)
    Mutex m;
    long long counter = 0;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                MutexLock lock(m);
                ++counter;
            }
        });
    }
    for (std::thread& t : threads) t.join();
    MutexLock lock(m);
    EXPECT_EQ(counter, static_cast<long long>(kThreads) * kIters);
}

TEST(AnnotationsTest, TryLockReportsContention) {
    Mutex m;
    m.lock();
    std::thread t([&] {
        bool locked = m.try_lock();
        EXPECT_FALSE(locked);
        if (locked) m.unlock();
    });
    t.join();
    m.unlock();
    bool locked = m.try_lock();
    EXPECT_TRUE(locked);
    if (locked) m.unlock();
}

TEST(AnnotationsTest, MutexLockWaitBlocksUntilNotified) {
    // Ping-pong a token between two threads: each side waits under the
    // scoped lock in the explicit while-loop idiom the header prescribes.
    Mutex m;
    std::condition_variable cv;
    int token = 0;
    constexpr int kRounds = 100;

    std::thread pong([&] {
        for (int i = 0; i < kRounds; ++i) {
            MutexLock lock(m);
            while (token % 2 == 0) lock.wait(cv);
            ++token;
            cv.notify_one();
        }
    });
    for (int i = 0; i < kRounds; ++i) {
        MutexLock lock(m);
        while (token % 2 == 1) lock.wait(cv);
        ++token;
        cv.notify_one();
    }
    pong.join();
    MutexLock lock(m);
    EXPECT_EQ(token, 2 * kRounds);
}

}  // namespace
}  // namespace pgf
