// pgf/util/temp_dir.hpp — the shared temp-path helpers that back every
// disk-touching test and the external-sort spill directories.
#include "pgf/util/temp_dir.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <utility>

namespace pgf::util {
namespace {

TEST(SanitizePathComponent, ReplacesSeparatorsOnly) {
    EXPECT_EQ(sanitize_path_component("A/B\\C:D"), "A_B_C_D");
    EXPECT_EQ(sanitize_path_component("plain-name.ext"), "plain-name.ext");
    EXPECT_EQ(sanitize_path_component(""), "");
}

TEST(UniqueTempPath, IsDeterministicPerStemAndTag) {
    const auto a = unique_temp_path("pgf_x", "Suite.Case");
    const auto b = unique_temp_path("pgf_x", "Suite.Case");
    EXPECT_EQ(a, b);  // same inputs, same path: reruns reuse the slot
    EXPECT_NE(a, unique_temp_path("pgf_x", "Suite.Other"));
    EXPECT_EQ(a.extension(), ".db");
    EXPECT_EQ(unique_temp_path("pgf_x", "t", ".bin").extension(), ".bin");
}

TEST(TempDir, CreatesAndRemovesRecursively) {
    std::filesystem::path kept;
    {
        TempDir dir("pgf-tempdir-test");
        kept = dir.path();
        ASSERT_TRUE(std::filesystem::is_directory(kept));
        std::filesystem::create_directories(dir.path() / "nested");
        std::ofstream(dir.path() / "nested" / "f.bin") << "x";
        ASSERT_TRUE(std::filesystem::exists(kept / "nested" / "f.bin"));
        // file() keeps arbitrary tags inside the directory.
        EXPECT_EQ(dir.file("a/b"), kept / "a_b");
    }
    EXPECT_FALSE(std::filesystem::exists(kept));
}

TEST(TempDir, DistinctInstancesGetDistinctPaths) {
    TempDir a("pgf-tempdir-test");
    TempDir b("pgf-tempdir-test");
    EXPECT_NE(a.path(), b.path());
}

TEST(TempDir, MoveTransfersOwnership) {
    std::filesystem::path kept;
    {
        TempDir a("pgf-tempdir-test");
        kept = a.path();
        TempDir b = std::move(a);
        EXPECT_EQ(b.path(), kept);
        // a is hollow now; b's destruction does the cleanup.
    }
    EXPECT_FALSE(std::filesystem::exists(kept));
}

}  // namespace
}  // namespace pgf::util
