#include "pgf/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "pgf/util/check.hpp"
#include "pgf/util/stats.hpp"

namespace pgf {
namespace {

TEST(SplitMix64, KnownSequenceFromZeroSeed) {
    // Reference values of the public-domain splitmix64 algorithm.
    SplitMix64 sm(0);
    EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
    EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
    EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(Rng, DeterministicForEqualSeeds) {
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(a.next_u32(), b.next_u32());
    }
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next_u32() == b.next_u32()) ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformDoubleInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformDoubleMeanIsHalf) {
    Rng rng(11);
    OnlineStats s;
    for (int i = 0; i < 100000; ++i) s.add(rng.uniform());
    EXPECT_NEAR(s.mean(), 0.5, 0.01);
    EXPECT_NEAR(s.stddev(), std::sqrt(1.0 / 12.0), 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform(-5.0, 17.5);
        ASSERT_GE(u, -5.0);
        ASSERT_LT(u, 17.5);
    }
}

TEST(Rng, BelowCoversAllResiduesUnbiased) {
    Rng rng(19);
    constexpr std::uint32_t kBound = 7;
    std::array<int, kBound> counts{};
    constexpr int kDraws = 70000;
    for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBound)];
    for (std::uint32_t r = 0; r < kBound; ++r) {
        EXPECT_NEAR(counts[r], kDraws / kBound, 500) << "residue " << r;
    }
}

TEST(Rng, BelowOneAlwaysZero) {
    Rng rng(23);
    for (int i = 0; i < 100; ++i) ASSERT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroThrows) {
    Rng rng(5);
    EXPECT_THROW(rng.below(0), CheckError);
}

TEST(Rng, UniformIntInclusiveBounds) {
    Rng rng(29);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        std::int64_t v = rng.uniform_int(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);  // all 7 values hit in 1000 draws
}

TEST(Rng, UniformIntDegenerateRange) {
    Rng rng(31);
    EXPECT_EQ(rng.uniform_int(9, 9), 9);
    EXPECT_THROW(rng.uniform_int(10, 9), CheckError);
}

TEST(Rng, UniformIntLargeSpan) {
    Rng rng(37);
    std::int64_t lo = -5'000'000'000LL, hi = 5'000'000'000LL;
    for (int i = 0; i < 1000; ++i) {
        std::int64_t v = rng.uniform_int(lo, hi);
        ASSERT_GE(v, lo);
        ASSERT_LE(v, hi);
    }
}

TEST(Rng, NormalMomentsMatch) {
    Rng rng(41);
    OnlineStats s;
    for (int i = 0; i < 200000; ++i) s.add(rng.normal(10.0, 3.0));
    EXPECT_NEAR(s.mean(), 10.0, 0.05);
    EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Rng, NormalIsPortableAcrossInstances) {
    // Box-Muller from identical PCG streams must agree bit-for-bit.
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i) {
        ASSERT_EQ(a.normal(), b.normal());
    }
}

TEST(Rng, ExponentialMeanIsInverseRate) {
    Rng rng(43);
    OnlineStats s;
    for (int i = 0; i < 200000; ++i) s.add(rng.exponential(4.0));
    EXPECT_NEAR(s.mean(), 0.25, 0.005);
}

TEST(Rng, ExponentialRequiresPositiveRate) {
    Rng rng(47);
    EXPECT_THROW(rng.exponential(0.0), CheckError);
    EXPECT_THROW(rng.exponential(-1.0), CheckError);
}

TEST(Rng, ShuffleIsPermutation) {
    Rng rng(53);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    auto sorted = v;
    rng.shuffle(v);
    EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(Rng, ShuffleUniformOverSmallPermutations) {
    // Chi-squared-style sanity: all 6 permutations of 3 items appear with
    // roughly equal frequency.
    Rng rng(59);
    std::map<std::array<int, 3>, int> counts;
    constexpr int kTrials = 60000;
    for (int t = 0; t < kTrials; ++t) {
        std::vector<int> v{0, 1, 2};
        rng.shuffle(v);
        ++counts[{v[0], v[1], v[2]}];
    }
    EXPECT_EQ(counts.size(), 6u);
    for (const auto& [perm, count] : counts) {
        EXPECT_NEAR(count, kTrials / 6, 600);
    }
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
    Rng rng(61);
    for (int t = 0; t < 100; ++t) {
        auto idx = rng.sample_indices(50, 20);
        ASSERT_EQ(idx.size(), 20u);
        std::set<std::size_t> s(idx.begin(), idx.end());
        ASSERT_EQ(s.size(), 20u);
        for (std::size_t i : idx) ASSERT_LT(i, 50u);
    }
}

TEST(Rng, SampleIndicesFullSetIsPermutation) {
    Rng rng(67);
    auto idx = rng.sample_indices(10, 10);
    std::set<std::size_t> s(idx.begin(), idx.end());
    EXPECT_EQ(s.size(), 10u);
}

TEST(Rng, SampleIndicesRejectsOversizedRequest) {
    Rng rng(71);
    EXPECT_THROW(rng.sample_indices(5, 6), CheckError);
}

TEST(Rng, SampleIndicesIsUniform) {
    // Every index should be selected with probability k/n.
    Rng rng(73);
    constexpr std::size_t n = 10, k = 3;
    std::array<int, n> hits{};
    constexpr int kTrials = 30000;
    for (int t = 0; t < kTrials; ++t) {
        for (std::size_t i : rng.sample_indices(n, k)) ++hits[i];
    }
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(hits[i], kTrials * k / n, 400) << "index " << i;
    }
}

TEST(Rng, StateRoundTripResumesStream) {
    Rng rng(99);
    for (int i = 0; i < 17; ++i) rng.next_u32();
    const RngState snap = rng.state();
    std::vector<std::uint64_t> expected;
    for (int i = 0; i < 8; ++i) expected.push_back(rng.next_u64());

    Rng other(1);  // different seed; set_state must fully overwrite
    other.set_state(snap);
    for (std::uint64_t v : expected) EXPECT_EQ(other.next_u64(), v);
}

TEST(Rng, StateCapturesBoxMullerSpare) {
    // normal() produces deviates in pairs; the cached second deviate is
    // part of the stream position and must survive a snapshot/restore.
    Rng rng(7);
    (void)rng.normal();  // leaves a spare cached
    const RngState snap = rng.state();
    EXPECT_TRUE(snap.has_spare_normal);
    const double expected_spare = rng.normal();
    const double expected_next = rng.normal();

    Rng other(3);
    other.set_state(snap);
    EXPECT_EQ(other.normal(), expected_spare);
    EXPECT_EQ(other.normal(), expected_next);
}

TEST(Rng, StateEqualityDetectsConsumption) {
    Rng rng(5);
    const RngState before = rng.state();
    EXPECT_EQ(before, rng.state());
    rng.next_u32();
    EXPECT_NE(before, rng.state());
}

}  // namespace
}  // namespace pgf
