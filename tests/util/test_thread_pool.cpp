#include "pgf/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "pgf/util/check.hpp"
#include "pgf/util/rng.hpp"

namespace pgf {
namespace {

TEST(ThreadPool, ParallelismCountsCallingThread) {
    ThreadPool solo(1);
    EXPECT_EQ(solo.parallelism(), 2u);
    ThreadPool quad(3);
    EXPECT_EQ(quad.parallelism(), 4u);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
    for (unsigned threads : {1u, 2u, 4u, 7u}) {
        ThreadPool pool(threads);
        for (std::size_t n : {1u, 5u, 100u, 4097u}) {
            std::vector<std::atomic<int>> hits(n);
            pool.parallel_for(n, [&](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) {
                    hits[i].fetch_add(1, std::memory_order_relaxed);
                }
            });
            for (std::size_t i = 0; i < n; ++i) {
                ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " i=" << i;
            }
        }
    }
}

TEST(ThreadPool, ZeroItemsIsNoop) {
    ThreadPool pool(2);
    bool called = false;
    pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
    EXPECT_FALSE(called);
    EXPECT_EQ(pool.chunk_size(0), 0u);
}

TEST(ThreadPool, ChunksPartitionTheRange) {
    ThreadPool pool(3);
    const std::size_t n = 1000;
    std::size_t chunk = pool.chunk_size(n);
    EXPECT_GT(chunk, 0u);
    // Sum over disjoint chunks equals the serial sum.
    std::vector<double> xs(n);
    Rng rng(3);
    for (auto& x : xs) x = rng.uniform();
    std::vector<double> partial((n + chunk - 1) / chunk, 0.0);
    pool.parallel_for(n, [&](std::size_t begin, std::size_t end) {
        double s = 0.0;
        for (std::size_t i = begin; i < end; ++i) s += xs[i];
        partial[begin / chunk] = s;
    });
    double parallel_sum = 0.0;
    for (double s : partial) parallel_sum += s;
    double serial_sum = std::accumulate(xs.begin(), xs.end(), 0.0);
    EXPECT_DOUBLE_EQ(parallel_sum, serial_sum);
}

TEST(ThreadPool, MapReduceArgminIsDeterministic) {
    // Duplicate minima: the reduction must pick the first occurrence, like
    // a serial left-to-right scan, on every run and pool size.
    std::vector<double> xs(5000, 1.0);
    xs[1234] = 0.5;
    xs[1235] = 0.5;
    xs[4000] = 0.5;
    struct Best {
        double val;
        std::size_t idx;
    };
    for (unsigned threads : {1u, 2u, 5u}) {
        ThreadPool pool(threads);
        for (int run = 0; run < 10; ++run) {
            Best best = pool.map_reduce(
                xs.size(), Best{1e300, xs.size()},
                [&](std::size_t begin, std::size_t end) {
                    Best local{1e300, xs.size()};
                    for (std::size_t i = begin; i < end; ++i) {
                        if (xs[i] < local.val) local = Best{xs[i], i};
                    }
                    return local;
                },
                [](const Best& acc, const Best& v) {
                    return v.val < acc.val ? v : acc;
                });
            ASSERT_EQ(best.idx, 1234u);
            ASSERT_DOUBLE_EQ(best.val, 0.5);
        }
    }
}

TEST(ThreadPool, ExplicitChunkCoversEveryIndexExactlyOnce) {
    for (unsigned threads : {1u, 3u}) {
        ThreadPool pool(threads);
        for (std::size_t chunk : {1u, 3u, 64u}) {
            const std::size_t n = 257;
            std::vector<std::atomic<int>> hits(n);
            pool.parallel_for_chunk(
                n, chunk, [&](std::size_t begin, std::size_t end) {
                    EXPECT_LE(end - begin, chunk);
                    // Every range starts on a chunk boundary: tasks can key
                    // per-chunk state off begin / chunk.
                    EXPECT_EQ(begin % chunk, 0u);
                    for (std::size_t i = begin; i < end; ++i) {
                        hits[i].fetch_add(1, std::memory_order_relaxed);
                    }
                });
            for (std::size_t i = 0; i < n; ++i) {
                ASSERT_EQ(hits[i].load(), 1)
                    << "chunk=" << chunk << " i=" << i;
            }
        }
    }
}

TEST(ThreadPool, ManySmallDispatchesSurvive) {
    // Stress the wakeup/completion protocol with thousands of tiny tasks.
    ThreadPool pool(4);
    std::atomic<std::size_t> total{0};
    for (int round = 0; round < 2000; ++round) {
        pool.parallel_for(8, [&](std::size_t begin, std::size_t end) {
            total.fetch_add(end - begin, std::memory_order_relaxed);
        });
    }
    EXPECT_EQ(total.load(), 2000u * 8u);
}

#if PGF_DCHECK_ACTIVE
// Reentrant submission (fn submitting to the pool that runs it) used to
// deadlock silently on the submit mutex; checked builds now fail fast. The
// chunk that trips the check may run on the calling thread (CheckError
// propagates, uncaught here) or on a worker (fn must not throw, so the
// worker std::terminates) — either way the process dies with the
// diagnostic, which is what a death test asserts. "threadsafe" style
// re-execs the child so the pool's worker threads are created post-fork.
TEST(ThreadPoolDeathTest, ReentrantSubmissionFailsFastInCheckedBuilds) {
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_DEATH(
        {
            ThreadPool pool(2);
            pool.parallel_for(8, [&](std::size_t, std::size_t) {
                pool.parallel_for(1, [](std::size_t, std::size_t) {});
            });
        },
        "not reentrant");
}

// Nested parallelism across *different* pools stays legal: the outer
// sweep-style pool may drive an inner kernel pool from inside fn (the
// --inner-threads path), and the reentrancy check must not misfire.
TEST(ThreadPool, NestedDistinctPoolsAreNotFlaggedAsReentrant) {
    ThreadPool outer(2);
    ThreadPool inner(2);
    std::atomic<std::size_t> total{0};
    outer.parallel_for_chunk(4, 1, [&](std::size_t, std::size_t) {
        inner.parallel_for(16, [&](std::size_t begin, std::size_t end) {
            total.fetch_add(end - begin, std::memory_order_relaxed);
        });
    });
    EXPECT_EQ(total.load(), 4u * 16u);
}
#endif  // PGF_DCHECK_ACTIVE

}  // namespace
}  // namespace pgf
