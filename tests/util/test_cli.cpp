#include "pgf/util/cli.hpp"

#include <gtest/gtest.h>

namespace pgf {
namespace {

Cli make(std::initializer_list<const char*> args) {
    std::vector<const char*> argv{"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EqualsForm) {
    Cli cli = make({"--disks=16", "--ratio=0.05"});
    EXPECT_EQ(cli.get_int("disks", 0), 16);
    EXPECT_DOUBLE_EQ(cli.get_double("ratio", 0.0), 0.05);
}

TEST(Cli, SpaceSeparatedForm) {
    Cli cli = make({"--disks", "8", "--name", "hot2d"});
    EXPECT_EQ(cli.get_int("disks", 0), 8);
    EXPECT_EQ(cli.get_string("name", ""), "hot2d");
}

TEST(Cli, BareFlagIsTrueBool) {
    Cli cli = make({"--verbose"});
    EXPECT_TRUE(cli.has("verbose"));
    EXPECT_TRUE(cli.get_bool("verbose", false));
}

TEST(Cli, BoolSpellings) {
    EXPECT_TRUE(make({"--x=true"}).get_bool("x", false));
    EXPECT_TRUE(make({"--x=YES"}).get_bool("x", false));
    EXPECT_TRUE(make({"--x=1"}).get_bool("x", false));
    EXPECT_FALSE(make({"--x=false"}).get_bool("x", true));
    EXPECT_FALSE(make({"--x=off"}).get_bool("x", true));
    EXPECT_FALSE(make({"--x=0"}).get_bool("x", true));
}

TEST(Cli, UnknownBoolSpellingFallsBack) {
    EXPECT_TRUE(make({"--x=maybe"}).get_bool("x", true));
    EXPECT_FALSE(make({"--x=maybe"}).get_bool("x", false));
}

TEST(Cli, MissingFlagsUseFallbacks) {
    Cli cli = make({});
    EXPECT_FALSE(cli.has("absent"));
    EXPECT_EQ(cli.get_int("absent", -7), -7);
    EXPECT_DOUBLE_EQ(cli.get_double("absent", 2.5), 2.5);
    EXPECT_EQ(cli.get_string("absent", "dflt"), "dflt");
    EXPECT_TRUE(cli.get_bool("absent", true));
}

TEST(Cli, PositionalArgumentsPreserveOrder) {
    Cli cli = make({"first", "--k=1", "second"});
    ASSERT_EQ(cli.positional().size(), 2u);
    EXPECT_EQ(cli.positional()[0], "first");
    EXPECT_EQ(cli.positional()[1], "second");
}

TEST(Cli, FlagFollowedByFlagIsBare) {
    Cli cli = make({"--a", "--b=2"});
    EXPECT_TRUE(cli.get_bool("a", false));
    EXPECT_EQ(cli.get_int("b", 0), 2);
}

TEST(Cli, ProgramNameCaptured) {
    Cli cli = make({});
    EXPECT_EQ(cli.program(), "prog");
}

TEST(Cli, LastValueWinsOnRepeat) {
    Cli cli = make({"--n=1", "--n=2"});
    EXPECT_EQ(cli.get_int("n", 0), 2);
}

}  // namespace
}  // namespace pgf
