#include "pgf/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "pgf/util/check.hpp"
#include "pgf/util/rng.hpp"

namespace pgf {
namespace {

TEST(OnlineStats, EmptyAccessorsThrow) {
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_THROW(s.mean(), CheckError);
    EXPECT_THROW(s.min(), CheckError);
    EXPECT_THROW(s.max(), CheckError);
}

TEST(OnlineStats, SingleValue) {
    OnlineStats s;
    s.add(4.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 4.5);
    EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(OnlineStats, KnownSmallSample) {
    OnlineStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance of this classic example is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MatchesTwoPassComputation) {
    Rng rng(5);
    std::vector<double> xs;
    OnlineStats s;
    for (int i = 0; i < 5000; ++i) {
        double x = rng.normal(100.0, 17.0);
        xs.push_back(x);
        s.add(x);
    }
    double mean = 0.0;
    for (double x : xs) mean += x;
    mean /= static_cast<double>(xs.size());
    double var = 0.0;
    for (double x : xs) var += (x - mean) * (x - mean);
    var /= static_cast<double>(xs.size() - 1);
    EXPECT_NEAR(s.mean(), mean, 1e-9);
    EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(OnlineStats, MergeEqualsSequential) {
    Rng rng(9);
    OnlineStats whole, left, right;
    for (int i = 0; i < 1000; ++i) {
        double x = rng.uniform(-10, 10);
        whole.add(x);
        (i < 400 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmptyIsIdentity) {
    OnlineStats a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Quantile, MedianAndExtremes) {
    std::vector<double> v{5, 1, 4, 2, 3};
    EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(Quantile, InterpolatesBetweenOrderStatistics) {
    std::vector<double> v{0.0, 10.0};
    EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
    EXPECT_DOUBLE_EQ(quantile(v, 0.75), 7.5);
}

TEST(Quantile, RejectsBadInput) {
    EXPECT_THROW(quantile({}, 0.5), CheckError);
    EXPECT_THROW(quantile({1.0}, -0.1), CheckError);
    EXPECT_THROW(quantile({1.0}, 1.1), CheckError);
}

TEST(Histogram, BinsAndBoundaries) {
    Histogram h(0.0, 10.0, 5);
    EXPECT_EQ(h.bins(), 5u);
    EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
    EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
    EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, CountsFallInCorrectBins) {
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);   // bin 0
    h.add(1.99);  // bin 0
    h.add(2.0);   // bin 1
    h.add(9.99);  // bin 4
    EXPECT_EQ(h.bin_count(0), 2u);
    EXPECT_EQ(h.bin_count(1), 1u);
    EXPECT_EQ(h.bin_count(4), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins) {
    Histogram h(0.0, 1.0, 4);
    h.add(-100.0);
    h.add(100.0);
    h.add(1.0);  // exactly hi clamps into the last bin
    EXPECT_EQ(h.bin_count(0), 1u);
    EXPECT_EQ(h.bin_count(3), 2u);
}

TEST(Histogram, AsciiRendersOneLinePerBin) {
    Histogram h(0.0, 2.0, 2);
    h.add(0.5);
    h.add(1.5);
    std::string art = h.ascii(10);
    EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 2);
    EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Histogram, RejectsDegenerateConstruction) {
    EXPECT_THROW(Histogram(1.0, 1.0, 4), CheckError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), CheckError);
}

}  // namespace
}  // namespace pgf
