#include "pgf/geom/proximity.hpp"

#include <gtest/gtest.h>

#include "pgf/util/check.hpp"

namespace pgf {
namespace {

TEST(IntervalProximity, IdenticalIntervalsSpanningDomain) {
    // Full overlap: delta = 1, proximity = (1+2)/3 = 1.
    EXPECT_DOUBLE_EQ(interval_proximity(0, 10, 0, 10, 10), 1.0);
}

TEST(IntervalProximity, PartialOverlap) {
    // Overlap of length 2 in a domain of 10: (1 + 2*0.2)/3.
    EXPECT_DOUBLE_EQ(interval_proximity(0, 5, 3, 9, 10), (1.0 + 0.4) / 3.0);
}

TEST(IntervalProximity, TouchingIntervals) {
    // Gap 0 (disjoint branch): (1-0)^2/3 = 1/3.
    EXPECT_DOUBLE_EQ(interval_proximity(0, 5, 5, 9, 10), 1.0 / 3.0);
}

TEST(IntervalProximity, DisjointDecaysQuadratically) {
    // Gap of 4 in domain 10: (1-0.4)^2 / 3 = 0.12.
    EXPECT_DOUBLE_EQ(interval_proximity(0, 2, 6, 8, 10), 0.36 / 3.0);
}

TEST(IntervalProximity, MaximalGapGivesZero) {
    EXPECT_DOUBLE_EQ(interval_proximity(0, 0, 10, 10, 10), 0.0);
}

TEST(IntervalProximity, SymmetricInArguments) {
    EXPECT_DOUBLE_EQ(interval_proximity(0, 3, 5, 9, 12),
                     interval_proximity(5, 9, 0, 3, 12));
    EXPECT_DOUBLE_EQ(interval_proximity(1, 4, 2, 6, 12),
                     interval_proximity(2, 6, 1, 4, 12));
}

TEST(IntervalProximity, MonotoneInGap) {
    double prev = 1.0;
    for (double gap = 0.0; gap <= 8.0; gap += 1.0) {
        double p = interval_proximity(0, 1, 1 + gap, 2 + gap, 10);
        EXPECT_LE(p, prev);
        prev = p;
    }
}

TEST(IntervalProximity, MonotoneInOverlap) {
    double prev = 0.0;
    for (double ov = 0.5; ov <= 5.0; ov += 0.5) {
        double p = interval_proximity(0, 5, 5 - ov, 10 - ov, 10);
        EXPECT_GE(p, prev);
        prev = p;
    }
}

TEST(IntervalProximity, InvalidDomainThrows) {
    EXPECT_THROW(interval_proximity(0, 1, 2, 3, 0), CheckError);
    EXPECT_THROW(interval_proximity(0, 1, 2, 3, -5), CheckError);
}

TEST(ProximityIndex, ProductOverDimensions) {
    Rect<2> domain{{{0.0, 0.0}}, {{10.0, 10.0}}};
    Rect<2> r{{{0.0, 0.0}}, {{5.0, 5.0}}};
    Rect<2> s{{{3.0, 6.0}}, {{9.0, 8.0}}};
    double px = interval_proximity(0, 5, 3, 9, 10);
    double py = interval_proximity(0, 5, 6, 8, 10);
    EXPECT_DOUBLE_EQ(proximity_index(r, s, domain), px * py);
}

TEST(ProximityIndex, SelfProximityIsMaximal) {
    Rect<3> domain{{{0.0, 0.0, 0.0}}, {{4.0, 4.0, 4.0}}};
    Rect<3> r{{{1.0, 1.0, 1.0}}, {{2.0, 2.0, 2.0}}};
    double self = proximity_index(r, r, domain);
    Rect<3> other{{{2.0, 1.0, 1.0}}, {{3.0, 2.0, 2.0}}};
    EXPECT_GT(self, proximity_index(r, other, domain));
}

TEST(ProximityIndex, AdjacentCloserThanDiagonal) {
    // The proximity index must rank a face-adjacent neighbor above a
    // diagonal one — the property Euclidean center distance also has, but
    // proximity additionally separates overlap configurations.
    Rect<2> domain{{{0.0, 0.0}}, {{4.0, 4.0}}};
    Rect<2> r{{{0.0, 0.0}}, {{1.0, 1.0}}};
    Rect<2> face{{{1.0, 0.0}}, {{2.0, 1.0}}};
    Rect<2> diag{{{1.0, 1.0}}, {{2.0, 2.0}}};
    EXPECT_GT(proximity_index(r, face, domain),
              proximity_index(r, diag, domain));
}

TEST(ProximityIndex, PartiallyOverlappedRanksAboveFullyDisjoint) {
    // Two boxes whose x-projections intersect but y-projections do not
    // ("partially overlapped") vs. one disjoint on both axes at the same
    // gap: partial overlap must score higher — the distinction the paper
    // gives for preferring the proximity index over Euclidean distance.
    Rect<2> domain{{{0.0, 0.0}}, {{10.0, 10.0}}};
    Rect<2> r{{{0.0, 0.0}}, {{2.0, 2.0}}};
    Rect<2> partial{{{0.0, 4.0}}, {{2.0, 6.0}}};   // same x-range, y gap 2
    Rect<2> disjoint{{{4.0, 4.0}}, {{6.0, 6.0}}};  // gap 2 on both axes
    EXPECT_GT(proximity_index(r, partial, domain),
              proximity_index(r, disjoint, domain));
}

TEST(ProximityIndex, SymmetricAndPositive) {
    Rect<3> domain{{{0.0, 0.0, 0.0}}, {{8.0, 8.0, 8.0}}};
    Rect<3> a{{{0.0, 1.0, 2.0}}, {{1.0, 3.0, 4.0}}};
    Rect<3> b{{{5.0, 5.0, 0.0}}, {{7.0, 8.0, 1.0}}};
    EXPECT_DOUBLE_EQ(proximity_index(a, b, domain),
                     proximity_index(b, a, domain));
    EXPECT_GT(proximity_index(a, b, domain), 0.0);
    EXPECT_LE(proximity_index(a, b, domain), 1.0);
}

TEST(CenterSimilarity, OneForCoincidentCenters) {
    Rect<2> domain{{{0.0, 0.0}}, {{10.0, 10.0}}};
    Rect<2> a{{{1.0, 1.0}}, {{3.0, 3.0}}};
    Rect<2> b{{{0.0, 0.0}}, {{4.0, 4.0}}};  // same center (2,2)
    EXPECT_DOUBLE_EQ(center_similarity(a, b, domain), 1.0);
}

TEST(CenterSimilarity, DecreasesWithDistance) {
    Rect<2> domain{{{0.0, 0.0}}, {{10.0, 10.0}}};
    Rect<2> a{{{0.0, 0.0}}, {{1.0, 1.0}}};
    Rect<2> near{{{1.0, 0.0}}, {{2.0, 1.0}}};
    Rect<2> far{{{8.0, 0.0}}, {{9.0, 1.0}}};
    EXPECT_GT(center_similarity(a, near, domain),
              center_similarity(a, far, domain));
}

TEST(CenterSimilarity, CannotDistinguishOverlapStructure) {
    // Documents the weakness the paper cites: equal center distances give
    // equal similarity regardless of overlap.
    Rect<2> domain{{{0.0, 0.0}}, {{10.0, 10.0}}};
    Rect<2> thin{{{0.0, 0.0}}, {{0.2, 4.0}}};   // center (0.1, 2)
    Rect<2> wide{{{0.0, 1.9}}, {{0.2, 2.1}}};   // same center
    Rect<2> probe{{{3.0, 1.0}}, {{4.0, 3.0}}};
    EXPECT_DOUBLE_EQ(center_similarity(thin, probe, domain),
                     center_similarity(wide, probe, domain));
    EXPECT_NE(proximity_index(thin, probe, domain),
              proximity_index(wide, probe, domain));
}

}  // namespace
}  // namespace pgf
