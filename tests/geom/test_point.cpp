#include "pgf/geom/point.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "pgf/util/check.hpp"

namespace pgf {
namespace {

TEST(Point, DefaultIsOrigin) {
    Point<3> p;
    EXPECT_EQ(p[0], 0.0);
    EXPECT_EQ(p[1], 0.0);
    EXPECT_EQ(p[2], 0.0);
}

TEST(Point, IndexingAndEquality) {
    Point<2> a{{1.0, 2.0}};
    Point<2> b{{1.0, 2.0}};
    Point<2> c{{1.0, 2.5}};
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    a[1] = 2.5;
    EXPECT_EQ(a, c);
}

TEST(Point, DistanceMatchesPythagoras) {
    Point<2> a{{0.0, 0.0}};
    Point<2> b{{3.0, 4.0}};
    EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
    EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
}

TEST(Point, StreamFormat) {
    Point<3> p{{1.0, 2.0, 3.0}};
    std::ostringstream os;
    os << p;
    EXPECT_EQ(os.str(), "(1, 2, 3)");
}

TEST(Rect, FromBoundsValidates) {
    Point<2> lo{{0.0, 0.0}}, hi{{1.0, 2.0}};
    auto r = Rect<2>::from_bounds(lo, hi);
    EXPECT_DOUBLE_EQ(r.extent(0), 1.0);
    EXPECT_DOUBLE_EQ(r.extent(1), 2.0);
    Point<2> bad{{2.0, 0.0}};
    EXPECT_THROW(Rect<2>::from_bounds(bad, hi), CheckError);
}

TEST(Rect, VolumeAndCenter) {
    Rect<3> r{{{0.0, 0.0, 0.0}}, {{2.0, 3.0, 4.0}}};
    EXPECT_DOUBLE_EQ(r.volume(), 24.0);
    Point<3> c = r.center();
    EXPECT_DOUBLE_EQ(c[0], 1.0);
    EXPECT_DOUBLE_EQ(c[1], 1.5);
    EXPECT_DOUBLE_EQ(c[2], 2.0);
}

TEST(Rect, ContainsIsHalfOpen) {
    Rect<2> r{{{0.0, 0.0}}, {{1.0, 1.0}}};
    EXPECT_TRUE(r.contains(Point<2>{{0.0, 0.0}}));
    EXPECT_TRUE(r.contains(Point<2>{{0.999, 0.999}}));
    EXPECT_FALSE(r.contains(Point<2>{{1.0, 0.5}}));  // upper bound excluded
    EXPECT_FALSE(r.contains(Point<2>{{0.5, 1.0}}));
    EXPECT_FALSE(r.contains(Point<2>{{-0.001, 0.5}}));
}

TEST(Rect, IntersectsOverlapping) {
    Rect<2> a{{{0.0, 0.0}}, {{2.0, 2.0}}};
    Rect<2> b{{{1.0, 1.0}}, {{3.0, 3.0}}};
    EXPECT_TRUE(a.intersects(b));
    EXPECT_TRUE(b.intersects(a));
}

TEST(Rect, TouchingFacesDoNotIntersect) {
    Rect<2> a{{{0.0, 0.0}}, {{1.0, 1.0}}};
    Rect<2> b{{{1.0, 0.0}}, {{2.0, 1.0}}};
    EXPECT_FALSE(a.intersects(b));
    EXPECT_FALSE(b.intersects(a));
}

TEST(Rect, DisjointOnOneAxisOnly) {
    // Projections intersect on y but not x: the boxes are "partially
    // overlapped" in the paper's terminology, and must NOT intersect.
    Rect<2> a{{{0.0, 0.0}}, {{1.0, 5.0}}};
    Rect<2> b{{{2.0, 1.0}}, {{3.0, 4.0}}};
    EXPECT_FALSE(a.intersects(b));
    EXPECT_GT(a.overlap_extent(1, b), 0.0);
    EXPECT_DOUBLE_EQ(a.overlap_extent(0, b), 0.0);
}

TEST(Rect, OverlapExtentValues) {
    Rect<2> a{{{0.0, 0.0}}, {{2.0, 2.0}}};
    Rect<2> b{{{1.0, -1.0}}, {{3.0, 1.5}}};
    EXPECT_DOUBLE_EQ(a.overlap_extent(0, b), 1.0);
    EXPECT_DOUBLE_EQ(a.overlap_extent(1, b), 1.5);
}

TEST(Rect, GapExtentValues) {
    Rect<1> a{{{0.0}}, {{1.0}}};
    Rect<1> b{{{3.0}}, {{4.0}}};
    EXPECT_DOUBLE_EQ(a.gap_extent(0, b), 2.0);
    EXPECT_DOUBLE_EQ(b.gap_extent(0, a), 2.0);
    Rect<1> c{{{0.5}}, {{2.0}}};
    EXPECT_DOUBLE_EQ(a.gap_extent(0, c), 0.0);  // overlapping => no gap
}

TEST(Rect, ContainedRectIntersects) {
    Rect<2> outer{{{0.0, 0.0}}, {{10.0, 10.0}}};
    Rect<2> inner{{{4.0, 4.0}}, {{5.0, 5.0}}};
    EXPECT_TRUE(outer.intersects(inner));
    EXPECT_TRUE(inner.intersects(outer));
}

TEST(Rect, HighDimensionalBasics) {
    Rect<5> r;
    for (std::size_t i = 0; i < 5; ++i) {
        r.lo[i] = 0.0;
        r.hi[i] = static_cast<double>(i + 1);
    }
    EXPECT_DOUBLE_EQ(r.volume(), 120.0);
    EXPECT_TRUE(r.contains(Point<5>{{0.5, 0.5, 0.5, 0.5, 0.5}}));
}

}  // namespace
}  // namespace pgf
