#include "pgf/graph/spanning_path.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <numeric>
#include <set>

#include "pgf/util/rng.hpp"

namespace pgf {
namespace {

TEST(SpanningPath, SingleVertex) {
    auto path = greedy_spanning_path(
        1, 0, [](std::size_t, std::size_t) { return 1.0; });
    EXPECT_EQ(path, (std::vector<std::size_t>{0}));
}

TEST(SpanningPath, IsPermutationStartingAtStart) {
    Rng rng(3);
    std::vector<double> xs;
    for (int i = 0; i < 40; ++i) xs.push_back(rng.uniform());
    auto sim = [&](std::size_t i, std::size_t j) {
        return 1.0 / (1.0 + std::abs(xs[i] - xs[j]));
    };
    auto path = greedy_spanning_path(40, 7, sim);
    ASSERT_EQ(path.size(), 40u);
    EXPECT_EQ(path.front(), 7u);
    std::set<std::size_t> unique(path.begin(), path.end());
    EXPECT_EQ(unique.size(), 40u);
}

TEST(SpanningPath, FollowsLineInOrder) {
    // Points on a line with similarity decreasing in distance: the greedy
    // path from one end must walk the line monotonically.
    constexpr std::size_t n = 12;
    auto sim = [](std::size_t i, std::size_t j) {
        return 1.0 / (1.0 + std::abs(static_cast<double>(i) -
                                     static_cast<double>(j)));
    };
    auto path = greedy_spanning_path(n, 0, sim);
    for (std::size_t k = 0; k < n; ++k) EXPECT_EQ(path[k], k);
    // From the middle it first exhausts one side before jumping.
    auto mid = greedy_spanning_path(n, 5, sim);
    EXPECT_EQ(mid.front(), 5u);
    std::set<std::size_t> unique(mid.begin(), mid.end());
    EXPECT_EQ(unique.size(), n);
}

TEST(SpanningPath, GreedyBeatsRandomOrder) {
    Rng rng(9);
    std::vector<std::pair<double, double>> pts;
    for (int i = 0; i < 60; ++i) {
        pts.emplace_back(rng.uniform(), rng.uniform());
    }
    auto sim = [&](std::size_t i, std::size_t j) {
        double dx = pts[i].first - pts[j].first;
        double dy = pts[i].second - pts[j].second;
        return 1.0 / (1.0 + std::sqrt(dx * dx + dy * dy));
    };
    std::function<double(std::size_t, std::size_t)> sim_fn = sim;
    auto greedy = greedy_spanning_path(60, 0, sim);
    std::vector<std::size_t> random_order(60);
    std::iota(random_order.begin(), random_order.end(), std::size_t{0});
    rng.shuffle(random_order);
    EXPECT_GT(path_similarity(greedy, sim_fn),
              path_similarity(random_order, sim_fn));
}

TEST(SpanningPath, RejectsBadArguments) {
    auto unit = [](std::size_t, std::size_t) { return 1.0; };
    EXPECT_THROW(greedy_spanning_path(0, 0, unit), CheckError);
    EXPECT_THROW(greedy_spanning_path(3, 5, unit), CheckError);
}

TEST(PathSimilarity, SumsConsecutiveEdges) {
    std::function<double(std::size_t, std::size_t)> sim =
        [](std::size_t i, std::size_t j) {
            return static_cast<double>(i + j);
        };
    std::vector<std::size_t> path{0, 1, 2};
    EXPECT_DOUBLE_EQ(path_similarity(path, sim), 1.0 + 3.0);
    std::vector<std::size_t> single{4};
    EXPECT_DOUBLE_EQ(path_similarity(single, sim), 0.0);
}

}  // namespace
}  // namespace pgf
