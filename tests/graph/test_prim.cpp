#include "pgf/graph/prim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <numeric>

#include "pgf/util/rng.hpp"

namespace pgf {
namespace {

/// Dense cost matrix wrapper.
struct Matrix {
    std::size_t n;
    std::vector<double> w;
    double operator()(std::size_t i, std::size_t j) const {
        return w[i * n + j];
    }
};

Matrix random_symmetric(std::size_t n, Rng& rng) {
    Matrix m{n, std::vector<double>(n * n, 0.0)};
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            double c = rng.uniform(0.1, 10.0);
            m.w[i * n + j] = c;
            m.w[j * n + i] = c;
        }
    }
    return m;
}

/// Kruskal MST total cost via union-find, for cross-checking Prim.
double kruskal_cost(const Matrix& m) {
    struct Edge {
        std::size_t a, b;
        double c;
    };
    std::vector<Edge> edges;
    for (std::size_t i = 0; i < m.n; ++i) {
        for (std::size_t j = i + 1; j < m.n; ++j) {
            edges.push_back({i, j, m(i, j)});
        }
    }
    std::sort(edges.begin(), edges.end(),
              [](const Edge& x, const Edge& y) { return x.c < y.c; });
    std::vector<std::size_t> root(m.n);
    std::iota(root.begin(), root.end(), std::size_t{0});
    std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
        while (root[x] != x) x = root[x] = root[root[x]];
        return x;
    };
    double total = 0.0;
    std::size_t joined = 0;
    for (const Edge& e : edges) {
        std::size_t ra = find(e.a), rb = find(e.b);
        if (ra == rb) continue;
        root[ra] = rb;
        total += e.c;
        if (++joined == m.n - 1) break;
    }
    return total;
}

TEST(Prim, SingleVertexTree) {
    auto parent = prim_mst(1, 0, [](std::size_t, std::size_t) { return 1.0; });
    ASSERT_EQ(parent.size(), 1u);
    EXPECT_EQ(parent[0], 0u);
}

TEST(Prim, TwoVertices) {
    auto parent = prim_mst(2, 0, [](std::size_t, std::size_t) { return 3.0; });
    EXPECT_EQ(parent[0], 0u);
    EXPECT_EQ(parent[1], 0u);
}

TEST(Prim, KnownSmallGraph) {
    // Path-shaped optimum: 0-1 (1), 1-2 (1), everything else expensive.
    Matrix m{3, {0, 1, 9,
                 1, 0, 1,
                 9, 1, 0}};
    auto parent = prim_mst(3, 0, m);
    auto cost = tree_cost(parent, [&](std::size_t i, std::size_t j) {
        return m(i, j);
    });
    EXPECT_DOUBLE_EQ(cost, 2.0);
}

TEST(Prim, MatchesKruskalOnRandomGraphs) {
    Rng rng(5);
    for (std::size_t n : {2u, 3u, 5u, 10u, 25u, 60u}) {
        Matrix m = random_symmetric(n, rng);
        auto parent = prim_mst(n, 0, m);
        double prim_total = tree_cost(
            parent, [&](std::size_t i, std::size_t j) { return m(i, j); });
        EXPECT_NEAR(prim_total, kruskal_cost(m), 1e-9) << "n=" << n;
    }
}

TEST(Prim, ParentArrayIsSpanningTree) {
    Rng rng(7);
    Matrix m = random_symmetric(30, rng);
    auto parent = prim_mst(30, 4, m);
    EXPECT_EQ(parent[4], 4u);  // root self-parents
    // Every vertex reaches the root without cycles.
    for (std::size_t v = 0; v < 30; ++v) {
        std::size_t cur = v, hops = 0;
        while (cur != 4) {
            cur = parent[cur];
            ASSERT_LT(++hops, 31u) << "cycle from " << v;
        }
    }
}

TEST(Prim, RootChoiceDoesNotChangeCost) {
    Rng rng(11);
    Matrix m = random_symmetric(20, rng);
    auto cost_fn = [&](std::size_t i, std::size_t j) { return m(i, j); };
    double c0 = tree_cost(prim_mst(20, 0, m), cost_fn);
    double c7 = tree_cost(prim_mst(20, 7, m), cost_fn);
    double c19 = tree_cost(prim_mst(20, 19, m), cost_fn);
    EXPECT_NEAR(c0, c7, 1e-9);
    EXPECT_NEAR(c0, c19, 1e-9);
}

TEST(Prim, RejectsBadArguments) {
    auto unit = [](std::size_t, std::size_t) { return 1.0; };
    EXPECT_THROW(prim_mst(0, 0, unit), CheckError);
    EXPECT_THROW(prim_mst(3, 3, unit), CheckError);
}

TEST(Preorder, VisitsRootFirstParentsBeforeChildren) {
    // Tree: 2 <- 0, 2 <- 4, 0 <- 1, 0 <- 3 (root 2).
    std::vector<std::size_t> parent{2, 0, 2, 0, 2};
    auto order = preorder(parent);
    ASSERT_EQ(order.size(), 5u);
    EXPECT_EQ(order[0], 2u);
    std::vector<std::size_t> pos(5);
    for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
    for (std::size_t v = 0; v < 5; ++v) {
        if (v != 2) {
            EXPECT_LT(pos[parent[v]], pos[v]) << "vertex " << v;
        }
    }
}

TEST(Preorder, ChildrenVisitedInIncreasingOrder) {
    std::vector<std::size_t> parent{0, 0, 0, 1, 1};
    auto order = preorder(parent);
    // DFS preorder with ascending children: 0, 1, 3, 4, 2.
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 3, 4, 2}));
}

TEST(Preorder, RejectsMultipleRootsOrForests) {
    std::vector<std::size_t> two_roots{0, 1};
    EXPECT_THROW(preorder(two_roots), CheckError);
    std::vector<std::size_t> cycle{1, 0};  // no root at all
    EXPECT_THROW(preorder(cycle), CheckError);
}

}  // namespace
}  // namespace pgf
