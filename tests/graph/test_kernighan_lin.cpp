#include "pgf/graph/kernighan_lin.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "pgf/util/check.hpp"
#include "pgf/util/rng.hpp"

namespace pgf {
namespace {

using Weight = std::function<double(std::size_t, std::size_t)>;

TEST(InternalWeight, CountsOnlySameDiskEdges) {
    Weight unit = [](std::size_t, std::size_t) { return 1.0; };
    std::vector<std::uint32_t> disks{0, 0, 1, 1};
    // Same-disk pairs: (0,1) and (2,3).
    EXPECT_DOUBLE_EQ(internal_weight(disks, unit), 2.0);
    std::vector<std::uint32_t> all_same{0, 0, 0};
    EXPECT_DOUBLE_EQ(internal_weight(all_same, unit), 3.0);
    std::vector<std::uint32_t> all_diff{0, 1, 2};
    EXPECT_DOUBLE_EQ(internal_weight(all_diff, unit), 0.0);
}

TEST(KlRefine, FixesAnObviouslyBadBisection) {
    // Two tight clusters {0,1} and {2,3} (weight 10 inside, 0.1 across).
    // Declustering wants the clusters SPLIT across disks; the worst start
    // puts each cluster on one disk.
    Weight w = [](std::size_t i, std::size_t j) {
        bool same_cluster = (i < 2) == (j < 2);
        return same_cluster ? 10.0 : 0.1;
    };
    std::vector<std::uint32_t> disks{0, 0, 1, 1};
    KlResult r = kl_refine(disks, 2, w);
    EXPECT_GT(r.swaps, 0u);
    EXPECT_LT(r.internal_after, r.internal_before);
    // Optimal: each disk holds one vertex of each cluster.
    EXPECT_NE(disks[0], disks[1]);
    EXPECT_NE(disks[2], disks[3]);
    EXPECT_NEAR(r.internal_after, 0.2, 1e-9);
    EXPECT_NEAR(r.internal_after, internal_weight(disks, w), 1e-9);
}

TEST(KlRefine, LeavesOptimumAlone) {
    Weight w = [](std::size_t i, std::size_t j) {
        bool same_cluster = (i < 2) == (j < 2);
        return same_cluster ? 10.0 : 0.1;
    };
    std::vector<std::uint32_t> disks{0, 1, 0, 1};
    KlResult r = kl_refine(disks, 2, w);
    EXPECT_EQ(r.swaps, 0u);
    EXPECT_DOUBLE_EQ(r.internal_after, r.internal_before);
    EXPECT_EQ(r.passes, 1u);
}

TEST(KlRefine, PreservesPartitionSizes) {
    Rng rng(13);
    const std::size_t n = 40;
    std::vector<double> pos(n);
    for (auto& p : pos) p = rng.uniform();
    Weight w = [&](std::size_t i, std::size_t j) {
        return 1.0 / (1.0 + 10.0 * std::abs(pos[i] - pos[j]));
    };
    std::vector<std::uint32_t> disks(n);
    for (std::size_t i = 0; i < n; ++i) disks[i] = i < n / 2 ? 0 : 1;
    auto count = [&](std::uint32_t d) {
        std::size_t c = 0;
        for (auto x : disks) c += x == d ? 1 : 0;
        return c;
    };
    std::size_t before0 = count(0);
    kl_refine(disks, 2, w);
    EXPECT_EQ(count(0), before0);  // swaps keep sizes
}

TEST(KlRefine, NeverIncreasesInternalWeight) {
    Rng rng(17);
    for (int trial = 0; trial < 5; ++trial) {
        const std::size_t n = 30;
        std::vector<std::pair<double, double>> pts(n);
        for (auto& p : pts) p = {rng.uniform(), rng.uniform()};
        Weight w = [&](std::size_t i, std::size_t j) {
            double dx = pts[i].first - pts[j].first;
            double dy = pts[i].second - pts[j].second;
            return 1.0 / (1.0 + 5.0 * (dx * dx + dy * dy));
        };
        std::vector<std::uint32_t> disks(n);
        for (std::size_t i = 0; i < n; ++i) {
            disks[i] = static_cast<std::uint32_t>(rng.below(4));
        }
        double before = internal_weight(disks, w);
        KlResult r = kl_refine(disks, 4, w);
        EXPECT_LE(r.internal_after, before + 1e-12);
        EXPECT_NEAR(r.internal_after, internal_weight(disks, w), 1e-9);
    }
}

TEST(KlRefine, IncrementalBookkeepingMatchesRecomputation) {
    Rng rng(19);
    const std::size_t n = 25;
    std::vector<double> pos(n);
    for (auto& p : pos) p = rng.uniform();
    Weight w = [&](std::size_t i, std::size_t j) {
        return 0.5 + 0.5 / (1.0 + std::abs(pos[i] - pos[j]));
    };
    std::vector<std::uint32_t> disks(n);
    for (std::size_t i = 0; i < n; ++i) {
        disks[i] = static_cast<std::uint32_t>(i % 3);
    }
    KlResult r = kl_refine(disks, 3, w, 4);
    EXPECT_NEAR(r.internal_after, internal_weight(disks, w), 1e-9);
}

TEST(KlRefine, SingleDiskIsNoop) {
    Weight unit = [](std::size_t, std::size_t) { return 1.0; };
    std::vector<std::uint32_t> disks{0, 0, 0};
    KlResult r = kl_refine(disks, 1, unit);
    EXPECT_EQ(r.swaps, 0u);
    EXPECT_DOUBLE_EQ(r.internal_before, 3.0);
}

TEST(KlRefine, RespectsMaxPasses) {
    Rng rng(23);
    const std::size_t n = 20;
    std::vector<double> pos(n);
    for (auto& p : pos) p = rng.uniform();
    Weight w = [&](std::size_t i, std::size_t j) {
        return 1.0 / (1.0 + std::abs(pos[i] - pos[j]));
    };
    std::vector<std::uint32_t> disks(n);
    for (std::size_t i = 0; i < n; ++i) {
        disks[i] = static_cast<std::uint32_t>(rng.below(5));
    }
    KlResult r = kl_refine(disks, 5, w, 1);
    EXPECT_EQ(r.passes, 1u);
}

TEST(KlRefine, RejectsOutOfRangeDisks) {
    Weight unit = [](std::size_t, std::size_t) { return 1.0; };
    std::vector<std::uint32_t> disks{0, 5};
    EXPECT_THROW(kl_refine(disks, 2, unit), CheckError);
}

}  // namespace
}  // namespace pgf
