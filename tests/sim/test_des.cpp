#include "pgf/sim/des.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "pgf/util/check.hpp"

namespace pgf::sim {
namespace {

TEST(Simulator, StartsAtTimeZeroEmpty) {
    Simulator s;
    EXPECT_DOUBLE_EQ(s.now(), 0.0);
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.run(), 0u);
}

TEST(Simulator, EventsFireInTimeOrder) {
    Simulator s;
    std::vector<int> order;
    s.schedule_at(3.0, [&] { order.push_back(3); });
    s.schedule_at(1.0, [&] { order.push_back(1); });
    s.schedule_at(2.0, [&] { order.push_back(2); });
    EXPECT_EQ(s.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(s.now(), 3.0);
}

TEST(Simulator, EqualTimesFifo) {
    Simulator s;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        s.schedule_at(5.0, [&, i] { order.push_back(i); });
    }
    s.run();
    for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], static_cast<int>(i));
}

TEST(Simulator, HandlersCanScheduleMoreEvents) {
    Simulator s;
    std::vector<double> times;
    std::function<void()> tick = [&] {
        times.push_back(s.now());
        if (times.size() < 5) s.schedule_in(1.5, tick);
    };
    s.schedule_at(0.0, tick);
    s.run();
    ASSERT_EQ(times.size(), 5u);
    EXPECT_DOUBLE_EQ(times.back(), 6.0);
}

TEST(Simulator, ScheduleInUsesCurrentTime) {
    Simulator s;
    double fired_at = -1.0;
    s.schedule_at(2.0, [&] {
        s.schedule_in(0.5, [&] { fired_at = s.now(); });
    });
    s.run();
    EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(Simulator, RejectsPastSchedulingAndNegativeDelay) {
    Simulator s;
    s.schedule_at(10.0, [&] {
        EXPECT_THROW(s.schedule_at(5.0, [] {}), CheckError);
        EXPECT_THROW(s.schedule_in(-1.0, [] {}), CheckError);
    });
    s.run();
}

TEST(Simulator, MaxEventsGuardStopsRunaways) {
    Simulator s;
    std::size_t fired = 0;
    std::function<void()> loop = [&] {
        ++fired;
        s.schedule_in(1.0, loop);
    };
    s.schedule_at(0.0, loop);
    EXPECT_EQ(s.run(100), 100u);
    EXPECT_EQ(fired, 100u);
    EXPECT_FALSE(s.empty());
}

TEST(Simulator, PendingCount) {
    Simulator s;
    s.schedule_at(1.0, [] {});
    s.schedule_at(2.0, [] {});
    EXPECT_EQ(s.pending(), 2u);
    s.run();
    EXPECT_EQ(s.pending(), 0u);
}

}  // namespace
}  // namespace pgf::sim
