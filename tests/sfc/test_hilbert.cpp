#include "pgf/sfc/hilbert.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <tuple>

#include "pgf/util/check.hpp"

namespace pgf::sfc {
namespace {

std::uint64_t index_of(std::initializer_list<std::uint32_t> coords,
                       unsigned bits) {
    std::vector<std::uint32_t> c(coords);
    return hilbert_index(c, bits);
}

TEST(Hilbert, Order1TwoDimensionalCurve) {
    // The first-order 2-d Hilbert curve visits the four quadrant cells in a
    // U: every rank is distinct and consecutive ranks are unit neighbors.
    std::set<std::uint64_t> ranks;
    for (std::uint32_t x = 0; x < 2; ++x) {
        for (std::uint32_t y = 0; y < 2; ++y) {
            ranks.insert(index_of({x, y}, 1));
        }
    }
    EXPECT_EQ(ranks.size(), 4u);
    EXPECT_EQ(*ranks.begin(), 0u);
    EXPECT_EQ(*ranks.rbegin(), 3u);
}

TEST(Hilbert, StartsAtOrigin) {
    EXPECT_EQ(index_of({0, 0}, 4), 0u);
    EXPECT_EQ(index_of({0, 0, 0}, 3), 0u);
    EXPECT_EQ(index_of({0, 0, 0, 0}, 2), 0u);
}

// Bijectivity and the defining adjacency property, swept over dimensions
// and orders: consecutive Hilbert indices must map to cells that differ by
// exactly 1 in exactly one coordinate.
class HilbertProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(HilbertProperty, RoundTripIsIdentity) {
    auto [dims, bits] = GetParam();
    const std::uint64_t total = 1ULL << (dims * bits);
    for (std::uint64_t h = 0; h < total; ++h) {
        auto coords = hilbert_coords(h, dims, bits);
        ASSERT_EQ(hilbert_index(coords, bits), h) << "dims=" << dims
                                                  << " bits=" << bits;
    }
}

TEST_P(HilbertProperty, ConsecutiveRanksAreUnitNeighbors) {
    auto [dims, bits] = GetParam();
    const std::uint64_t total = 1ULL << (dims * bits);
    auto prev = hilbert_coords(0, dims, bits);
    for (std::uint64_t h = 1; h < total; ++h) {
        auto cur = hilbert_coords(h, dims, bits);
        unsigned changed = 0;
        unsigned l1 = 0;
        for (unsigned i = 0; i < dims; ++i) {
            auto d = static_cast<unsigned>(
                std::abs(static_cast<std::int64_t>(cur[i]) -
                         static_cast<std::int64_t>(prev[i])));
            if (d != 0) ++changed;
            l1 += d;
        }
        ASSERT_EQ(changed, 1u) << "rank " << h;
        ASSERT_EQ(l1, 1u) << "rank " << h;
        prev = cur;
    }
}

TEST_P(HilbertProperty, CoversEveryCellExactlyOnce) {
    auto [dims, bits] = GetParam();
    const std::uint64_t total = 1ULL << (dims * bits);
    std::set<std::vector<std::uint32_t>> cells;
    for (std::uint64_t h = 0; h < total; ++h) {
        cells.insert(hilbert_coords(h, dims, bits));
    }
    EXPECT_EQ(cells.size(), total);
}

INSTANTIATE_TEST_SUITE_P(
    DimsBitsSweep, HilbertProperty,
    ::testing::Values(std::tuple<unsigned, unsigned>{1, 4},
                      std::tuple<unsigned, unsigned>{2, 1},
                      std::tuple<unsigned, unsigned>{2, 2},
                      std::tuple<unsigned, unsigned>{2, 4},
                      std::tuple<unsigned, unsigned>{2, 6},
                      std::tuple<unsigned, unsigned>{3, 1},
                      std::tuple<unsigned, unsigned>{3, 2},
                      std::tuple<unsigned, unsigned>{3, 4},
                      std::tuple<unsigned, unsigned>{4, 2},
                      std::tuple<unsigned, unsigned>{4, 3},
                      std::tuple<unsigned, unsigned>{5, 2}),
    [](const auto& param_info) {
        return "d" + std::to_string(std::get<0>(param_info.param)) + "b" +
               std::to_string(std::get<1>(param_info.param));
    });

TEST(Hilbert, RejectsOutOfRangeArguments) {
    std::vector<std::uint32_t> c{0, 0};
    EXPECT_THROW(hilbert_index(c, 0), CheckError);
    EXPECT_THROW(hilbert_index(c, 33), CheckError);
    std::vector<std::uint32_t> big{4, 0};
    EXPECT_THROW(hilbert_index(big, 2), CheckError);  // coord >= 2^bits
    std::vector<std::uint32_t> many(9, 0);
    EXPECT_THROW(hilbert_index(many, 8), CheckError);  // 72 bits > 64
    EXPECT_THROW(hilbert_coords(16, 2, 2), CheckError);  // index >= 2^4
}

TEST(Hilbert, LocalityBeatsRowMajorScan) {
    // Average |rank(a) - rank(b)| over all face-adjacent cell pairs should
    // be much smaller for Hilbert than for a row-major scan — the
    // clustering property HCAM relies on (paper Sec. 2.3 discussion).
    constexpr unsigned bits = 4;
    constexpr std::uint32_t n = 1u << bits;
    double hilbert_sum = 0.0, scan_sum = 0.0;
    std::size_t pairs = 0;
    for (std::uint32_t x = 0; x < n; ++x) {
        for (std::uint32_t y = 0; y + 1 < n; ++y) {
            std::vector<std::uint32_t> a{x, y}, b{x, y + 1};
            auto ha = hilbert_index(a, bits), hb = hilbert_index(b, bits);
            hilbert_sum += std::abs(static_cast<double>(ha) -
                                    static_cast<double>(hb));
            scan_sum += n;  // row-major distance of vertical neighbors
            ++pairs;
        }
    }
    EXPECT_LT(hilbert_sum / static_cast<double>(pairs),
              scan_sum / static_cast<double>(pairs));
}

TEST(BitsForShape, SmallestEnclosingCube) {
    std::vector<std::uint32_t> s1{16, 12, 8};
    EXPECT_EQ(bits_for_shape(s1), 4u);  // 16 fits in 2^4
    std::vector<std::uint32_t> s2{17, 2};
    EXPECT_EQ(bits_for_shape(s2), 5u);
    std::vector<std::uint32_t> s3{1, 1};
    EXPECT_EQ(bits_for_shape(s3), 1u);
    std::vector<std::uint32_t> s4{2};
    EXPECT_EQ(bits_for_shape(s4), 1u);
    std::vector<std::uint32_t> s5{3};
    EXPECT_EQ(bits_for_shape(s5), 2u);
}

}  // namespace
}  // namespace pgf::sfc
