#include "pgf/sfc/curve.hpp"

#include <gtest/gtest.h>

#include <set>

#include "pgf/util/check.hpp"

namespace pgf::sfc {
namespace {

const std::vector<CurveKind> kAllCurves{CurveKind::kHilbert, CurveKind::kMorton,
                                        CurveKind::kGray, CurveKind::kScan};

TEST(Curve, Names) {
    EXPECT_EQ(to_string(CurveKind::kHilbert), "hilbert");
    EXPECT_EQ(to_string(CurveKind::kMorton), "morton");
    EXPECT_EQ(to_string(CurveKind::kGray), "gray");
    EXPECT_EQ(to_string(CurveKind::kScan), "scan");
}

TEST(Curve, ScanIsRowMajor) {
    std::vector<std::uint32_t> shape{3, 4};
    std::vector<std::uint32_t> c{2, 1};
    EXPECT_EQ(linearize(CurveKind::kScan, c, shape), 2u * 4 + 1);
    std::vector<std::uint32_t> c2{0, 0};
    EXPECT_EQ(linearize(CurveKind::kScan, c2, shape), 0u);
    std::vector<std::uint32_t> c3{2, 3};
    EXPECT_EQ(linearize(CurveKind::kScan, c3, shape), 11u);
}

TEST(Curve, RanksDistinctOnNonPowerOfTwoShape) {
    std::vector<std::uint32_t> shape{5, 3};
    for (CurveKind kind : kAllCurves) {
        std::set<std::uint64_t> ranks;
        for (std::uint32_t x = 0; x < shape[0]; ++x) {
            for (std::uint32_t y = 0; y < shape[1]; ++y) {
                std::vector<std::uint32_t> c{x, y};
                ranks.insert(linearize(kind, c, shape));
            }
        }
        EXPECT_EQ(ranks.size(), 15u) << to_string(kind);
    }
}

TEST(Curve, RejectsOutOfGridCoordinates) {
    std::vector<std::uint32_t> shape{4, 4};
    std::vector<std::uint32_t> c{4, 0};
    for (CurveKind kind : kAllCurves) {
        EXPECT_THROW(linearize(kind, c, shape), CheckError) << to_string(kind);
    }
}

TEST(Curve, RejectsDimensionMismatch) {
    std::vector<std::uint32_t> shape{4, 4};
    std::vector<std::uint32_t> c{1, 1, 1};
    EXPECT_THROW(linearize(CurveKind::kScan, c, shape), CheckError);
}

TEST(CurveOrder, EnumeratesAllCellsOnce) {
    std::vector<std::uint32_t> shape{4, 3, 2};
    for (CurveKind kind : kAllCurves) {
        auto order = curve_order(kind, shape);
        ASSERT_EQ(order.size(), 24u) << to_string(kind);
        std::set<std::vector<std::uint32_t>> unique(order.begin(), order.end());
        EXPECT_EQ(unique.size(), 24u) << to_string(kind);
    }
}

TEST(CurveOrder, IsSortedByRank) {
    std::vector<std::uint32_t> shape{6, 5};
    for (CurveKind kind : kAllCurves) {
        auto order = curve_order(kind, shape);
        std::uint64_t prev = 0;
        bool first = true;
        for (const auto& cell : order) {
            std::uint64_t rank = linearize(kind, cell, shape);
            if (!first) {
                ASSERT_GT(rank, prev) << to_string(kind);
            }
            prev = rank;
            first = false;
        }
    }
}

TEST(CurveOrder, HilbertOrderOnSquareGridIsContiguous) {
    // On a power-of-two square grid the Hilbert order must step to a unit
    // neighbor each time (dense curve, no gaps).
    std::vector<std::uint32_t> shape{8, 8};
    auto order = curve_order(CurveKind::kHilbert, shape);
    for (std::size_t i = 1; i < order.size(); ++i) {
        int dx = static_cast<int>(order[i][0]) - static_cast<int>(order[i - 1][0]);
        int dy = static_cast<int>(order[i][1]) - static_cast<int>(order[i - 1][1]);
        ASSERT_EQ(std::abs(dx) + std::abs(dy), 1) << "step " << i;
    }
}

TEST(CurveOrder, ScanOrderMatchesOdometer) {
    std::vector<std::uint32_t> shape{2, 3};
    auto order = curve_order(CurveKind::kScan, shape);
    std::vector<std::vector<std::uint32_t>> expected{
        {0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}};
    EXPECT_EQ(order, expected);
}

TEST(CurveOrder, SingleCellGrid) {
    std::vector<std::uint32_t> shape{1, 1, 1};
    for (CurveKind kind : kAllCurves) {
        auto order = curve_order(kind, shape);
        ASSERT_EQ(order.size(), 1u);
        EXPECT_EQ(order[0], (std::vector<std::uint32_t>{0, 0, 0}));
    }
}

}  // namespace
}  // namespace pgf::sfc
