#include "pgf/sfc/zorder.hpp"

#include <gtest/gtest.h>

#include <set>

#include "pgf/util/check.hpp"

namespace pgf::sfc {
namespace {

TEST(Morton, TwoDimensionalKnownValues) {
    // With dim 0 most significant per plane: (x,y) -> interleave(x,y).
    std::vector<std::uint32_t> c00{0, 0}, c01{0, 1}, c10{1, 0}, c11{1, 1};
    EXPECT_EQ(morton_index(c00, 1), 0u);
    EXPECT_EQ(morton_index(c01, 1), 1u);
    EXPECT_EQ(morton_index(c10, 1), 2u);
    EXPECT_EQ(morton_index(c11, 1), 3u);
}

TEST(Morton, InterleavingStructure) {
    // x = 0b101, y = 0b011 -> index bits x2 y2 x1 y1 x0 y0 = 0b100111.
    std::vector<std::uint32_t> c{0b101, 0b011};
    EXPECT_EQ(morton_index(c, 3), 0b100111u);
}

TEST(Morton, RoundTrip) {
    for (unsigned dims = 1; dims <= 4; ++dims) {
        unsigned bits = dims <= 2 ? 5 : 3;
        std::uint64_t total = 1ULL << (dims * bits);
        for (std::uint64_t i = 0; i < total; ++i) {
            auto coords = morton_coords(i, dims, bits);
            ASSERT_EQ(morton_index(coords, bits), i)
                << "dims=" << dims << " bits=" << bits;
        }
    }
}

TEST(Morton, Bijective) {
    std::set<std::uint64_t> seen;
    for (std::uint32_t x = 0; x < 8; ++x) {
        for (std::uint32_t y = 0; y < 8; ++y) {
            for (std::uint32_t z = 0; z < 8; ++z) {
                std::vector<std::uint32_t> c{x, y, z};
                seen.insert(morton_index(c, 3));
            }
        }
    }
    EXPECT_EQ(seen.size(), 512u);
    EXPECT_EQ(*seen.rbegin(), 511u);
}

TEST(Morton, MonotoneInEachCoordinate) {
    for (std::uint32_t x = 0; x + 1 < 16; ++x) {
        std::vector<std::uint32_t> a{x, 5}, b{x + 1, 5};
        EXPECT_LT(morton_index(a, 4), morton_index(b, 4));
    }
}

TEST(Morton, RejectsBadArguments) {
    std::vector<std::uint32_t> c{0, 0};
    EXPECT_THROW(morton_index(c, 0), CheckError);
    std::vector<std::uint32_t> big{8, 0};
    EXPECT_THROW(morton_index(big, 3), CheckError);
}

}  // namespace
}  // namespace pgf::sfc
