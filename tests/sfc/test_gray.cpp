#include "pgf/sfc/gray.hpp"

#include <gtest/gtest.h>

#include "pgf/sfc/zorder.hpp"

#include <bit>
#include <set>

namespace pgf::sfc {
namespace {

TEST(Gray, EncodeKnownValues) {
    EXPECT_EQ(gray_encode(0), 0u);
    EXPECT_EQ(gray_encode(1), 1u);
    EXPECT_EQ(gray_encode(2), 3u);
    EXPECT_EQ(gray_encode(3), 2u);
    EXPECT_EQ(gray_encode(4), 6u);
}

TEST(Gray, DecodeInvertsEncode) {
    for (std::uint64_t v = 0; v < 4096; ++v) {
        EXPECT_EQ(gray_decode(gray_encode(v)), v);
        EXPECT_EQ(gray_encode(gray_decode(v)), v);
    }
    // Large values, including the top bits.
    for (std::uint64_t v : {0x8000000000000000ULL, 0xffffffffffffffffULL,
                            0x123456789abcdef0ULL}) {
        EXPECT_EQ(gray_decode(gray_encode(v)), v);
    }
}

TEST(Gray, ConsecutiveCodesDifferInOneBit) {
    for (std::uint64_t v = 0; v + 1 < 4096; ++v) {
        std::uint64_t diff = gray_encode(v) ^ gray_encode(v + 1);
        EXPECT_EQ(std::popcount(diff), 1) << "v=" << v;
    }
}

TEST(GrayIndex, BijectiveOverGrid) {
    std::set<std::uint64_t> seen;
    for (std::uint32_t x = 0; x < 16; ++x) {
        for (std::uint32_t y = 0; y < 16; ++y) {
            std::vector<std::uint32_t> c{x, y};
            seen.insert(gray_index(c, 4));
        }
    }
    EXPECT_EQ(seen.size(), 256u);
    EXPECT_EQ(*seen.rbegin(), 255u);
}

TEST(GrayIndex, ConsecutiveRanksDifferInOneInterleavedBit) {
    // Along the Gray-code curve, the interleaved coordinate word changes by
    // exactly one bit — the curve's defining locality property.
    constexpr unsigned bits = 3;
    std::vector<std::uint64_t> morton_by_rank(64);
    for (std::uint32_t x = 0; x < 8; ++x) {
        for (std::uint32_t y = 0; y < 8; ++y) {
            std::vector<std::uint32_t> c{x, y};
            morton_by_rank[gray_index(c, bits)] = morton_index(c, bits);
        }
    }
    for (std::size_t r = 0; r + 1 < morton_by_rank.size(); ++r) {
        EXPECT_EQ(std::popcount(morton_by_rank[r] ^ morton_by_rank[r + 1]), 1)
            << "rank " << r;
    }
}

}  // namespace
}  // namespace pgf::sfc
