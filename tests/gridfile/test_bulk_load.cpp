// Structural golden tests for GridFile::bulk_load: the batched build path
// must produce a grid file byte-identical to the one-record-at-a-time
// insert() loop — same scales, same directory, same buckets, same record
// order inside every bucket. The bench harness and the storage layer both
// rely on this equivalence (DESIGN.md §4d).
#include "pgf/gridfile/grid_file.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "pgf/analysis/grid_file_audit.hpp"
#include "pgf/util/rng.hpp"
#include "pgf/workload/datasets.hpp"

namespace pgf {
namespace {

template <std::size_t D>
void expect_identical(const GridFile<D>& a, const GridFile<D>& b) {
    ASSERT_EQ(a.record_count(), b.record_count());
    ASSERT_EQ(a.bucket_count(), b.bucket_count());
    ASSERT_EQ(a.refinement_count(), b.refinement_count());
    ASSERT_EQ(a.grid_shape(), b.grid_shape());
    for (std::size_t i = 0; i < D; ++i) {
        const LinearScale& sa = a.scale(i);
        const LinearScale& sb = b.scale(i);
        ASSERT_EQ(sa.intervals(), sb.intervals());
        for (std::uint32_t k = 0; k < sa.intervals(); ++k) {
            ASSERT_EQ(sa.interval_lo(k), sb.interval_lo(k));
            ASSERT_EQ(sa.interval_hi(k), sb.interval_hi(k));
        }
    }
    // Bucket ids must match cell-for-cell, not just up to renumbering: the
    // split sequence (and hence bucket numbering) is part of the contract.
    std::array<std::uint32_t, D> cell{};
    for (std::uint64_t idx = 0; idx < a.directory().cell_count(); ++idx) {
        ASSERT_EQ(a.directory().at(cell), b.directory().at(cell));
        for (std::size_t i = D; i-- > 0;) {
            if (++cell[i] < a.grid_shape()[i]) break;
            cell[i] = 0;
        }
    }
    for (std::uint32_t bi = 0; bi < a.bucket_count(); ++bi) {
        const auto& ba = a.bucket(bi);
        const auto& bb = b.bucket(bi);
        ASSERT_EQ(ba.cells.lo, bb.cells.lo);
        ASSERT_EQ(ba.cells.hi, bb.cells.hi);
        ASSERT_EQ(ba.records.size(), bb.records.size());
        for (std::size_t r = 0; r < ba.records.size(); ++r) {
            ASSERT_EQ(ba.records[r].id, bb.records[r].id);
            for (std::size_t i = 0; i < D; ++i) {
                ASSERT_EQ(ba.records[r].point[i], bb.records[r].point[i]);
            }
        }
    }
}

template <std::size_t D>
void check_bulk_matches_inserts(const Rect<D>& domain,
                                const std::vector<Point<D>>& points,
                                std::size_t bucket_capacity) {
    typename GridFile<D>::Config config;
    config.bucket_capacity = bucket_capacity;

    GridFile<D> incremental(domain, config);
    for (std::size_t i = 0; i < points.size(); ++i) {
        incremental.insert(points[i], i);
    }
    GridFile<D> bulk(domain, config);
    bulk.bulk_load(points);

    expect_identical(incremental, bulk);
    analysis::ValidationReport r =
        analysis::audit_grid_file(bulk, analysis::ValidationLevel::kDeep);
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(BulkLoad, MatchesInsertLoopUniform2D) {
    Rng rng(71);
    Rect<2> domain;
    domain.lo = {0.0, 0.0};
    domain.hi = {100.0, 100.0};
    std::vector<Point<2>> points;
    for (int i = 0; i < 5000; ++i) {
        points.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    }
    check_bulk_matches_inserts(domain, points, 8);
}

TEST(BulkLoad, MatchesInsertLoopSkewed3D) {
    Rng rng(72);
    Rect<3> domain;
    domain.lo = {0.0, 0.0, 0.0};
    domain.hi = {1.0, 1.0, 1.0};
    std::vector<Point<3>> points;
    for (int i = 0; i < 4000; ++i) {
        // Clustered around a corner so refinements concentrate and cached
        // cells are invalidated mid-block frequently.
        double x = rng.uniform() * rng.uniform();
        double y = rng.uniform() * rng.uniform();
        points.push_back({x, y, rng.uniform()});
    }
    check_bulk_matches_inserts(domain, points, 4);
}

TEST(BulkLoad, MatchesInsertLoopDuplicateHeavy) {
    // Duplicate coordinates can never be separated by refinement; the
    // overflow path must give up identically in both build modes.
    Rng rng(73);
    Rect<2> domain;
    domain.lo = {0.0, 0.0};
    domain.hi = {10.0, 10.0};
    std::vector<Point<2>> points;
    for (int i = 0; i < 500; ++i) {
        double x = static_cast<double>(rng.below(4));
        double y = static_cast<double>(rng.below(4));
        points.push_back({x + 1.0, y + 1.0});
    }
    check_bulk_matches_inserts(domain, points, 4);
}

TEST(BulkLoad, MatchesInsertLoopSmallAndEmpty) {
    Rect<2> domain;
    domain.lo = {0.0, 0.0};
    domain.hi = {1.0, 1.0};
    check_bulk_matches_inserts<2>(domain, {}, 4);
    check_bulk_matches_inserts<2>(domain, {{0.5, 0.5}}, 4);
}

TEST(BulkLoad, MatchesInsertLoopPaperDatasets) {
    // The bench datasets exercise merged buckets, clamped out-of-domain
    // points and the midpoint split policy at realistic scale.
    Rng rng(1);
    Dataset<2> ds = make_hotspot2d(rng, 6000);
    check_bulk_matches_inserts(ds.domain, ds.points, ds.bucket_capacity);
}

TEST(BulkLoad, IdBaseOffsetsRecordIds) {
    Rng rng(74);
    Rect<2> domain;
    domain.lo = {0.0, 0.0};
    domain.hi = {1.0, 1.0};
    std::vector<Point<2>> points;
    for (int i = 0; i < 100; ++i) {
        points.push_back({rng.uniform(), rng.uniform()});
    }
    GridFile<2> incremental(domain, {});
    for (std::size_t i = 0; i < points.size(); ++i) {
        incremental.insert(points[i], 1000 + i);
    }
    GridFile<2> bulk(domain, {});
    bulk.bulk_load(points, 1000);
    expect_identical(incremental, bulk);
}

}  // namespace
}  // namespace pgf
