#include "pgf/gridfile/scales.hpp"

#include <gtest/gtest.h>

#include "pgf/util/check.hpp"

namespace pgf {
namespace {

TEST(LinearScale, StartsWithOneInterval) {
    LinearScale s(0.0, 100.0);
    EXPECT_EQ(s.intervals(), 1u);
    EXPECT_DOUBLE_EQ(s.interval_lo(0), 0.0);
    EXPECT_DOUBLE_EQ(s.interval_hi(0), 100.0);
}

TEST(LinearScale, RejectsEmptyDomain) {
    EXPECT_THROW(LinearScale(5.0, 5.0), CheckError);
    EXPECT_THROW(LinearScale(5.0, 1.0), CheckError);
}

TEST(LinearScale, LocateWithinSingleInterval) {
    LinearScale s(0.0, 10.0);
    EXPECT_EQ(s.locate(0.0), 0u);
    EXPECT_EQ(s.locate(9.99), 0u);
}

TEST(LinearScale, LocateClampsOutOfDomain) {
    LinearScale s(0.0, 10.0);
    std::uint32_t idx;
    s.insert_split(5.0, &idx);
    EXPECT_EQ(s.locate(-3.0), 0u);
    EXPECT_EQ(s.locate(10.0), 1u);   // at hi -> last interval
    EXPECT_EQ(s.locate(42.0), 1u);
}

TEST(LinearScale, SplitCreatesHalfOpenIntervals) {
    LinearScale s(0.0, 10.0);
    std::uint32_t idx;
    ASSERT_TRUE(s.insert_split(4.0, &idx));
    EXPECT_EQ(idx, 0u);
    EXPECT_EQ(s.intervals(), 2u);
    EXPECT_EQ(s.locate(3.999), 0u);
    EXPECT_EQ(s.locate(4.0), 1u);  // boundary belongs to the upper interval
    EXPECT_DOUBLE_EQ(s.interval_hi(0), 4.0);
    EXPECT_DOUBLE_EQ(s.interval_lo(1), 4.0);
}

TEST(LinearScale, SplitsKeepSortedOrder) {
    LinearScale s(0.0, 100.0);
    std::uint32_t idx;
    ASSERT_TRUE(s.insert_split(50.0, &idx));
    EXPECT_EQ(idx, 0u);
    ASSERT_TRUE(s.insert_split(25.0, &idx));
    EXPECT_EQ(idx, 0u);  // splits the first interval
    ASSERT_TRUE(s.insert_split(75.0, &idx));
    EXPECT_EQ(idx, 2u);  // splits what is now the third interval
    EXPECT_EQ(s.intervals(), 4u);
    EXPECT_DOUBLE_EQ(s.interval_lo(0), 0.0);
    EXPECT_DOUBLE_EQ(s.interval_lo(1), 25.0);
    EXPECT_DOUBLE_EQ(s.interval_lo(2), 50.0);
    EXPECT_DOUBLE_EQ(s.interval_lo(3), 75.0);
    EXPECT_DOUBLE_EQ(s.interval_hi(3), 100.0);
}

TEST(LinearScale, DuplicateSplitRejectedWithoutChange) {
    LinearScale s(0.0, 10.0);
    std::uint32_t idx;
    ASSERT_TRUE(s.insert_split(5.0, &idx));
    EXPECT_FALSE(s.insert_split(5.0, &idx));
    EXPECT_EQ(s.intervals(), 2u);
}

TEST(LinearScale, SplitMustBeStrictlyInterior) {
    LinearScale s(0.0, 10.0);
    EXPECT_THROW(s.insert_split(0.0, nullptr), CheckError);
    EXPECT_THROW(s.insert_split(10.0, nullptr), CheckError);
    EXPECT_THROW(s.insert_split(-1.0, nullptr), CheckError);
}

TEST(LinearScale, SplitWithNullOutParameter) {
    LinearScale s(0.0, 10.0);
    EXPECT_TRUE(s.insert_split(2.0, nullptr));
    EXPECT_EQ(s.intervals(), 2u);
}

TEST(LinearScale, IntervalAccessorsOutOfRangeThrow) {
    // The interval bounds checks are debug-only (PGF_DCHECK): they sit on
    // the per-query hot path and callers only pass locate()-derived
    // indices. Release builds skip the validation entirely.
#if PGF_DCHECK_ACTIVE
    LinearScale s(0.0, 10.0);
    EXPECT_THROW(s.interval_lo(1), CheckError);
    EXPECT_THROW(s.interval_hi(1), CheckError);
#else
    GTEST_SKIP() << "interval bounds are PGF_DCHECK-only in this build";
#endif
}

TEST(LinearScale, IntervalsPartitionDomain) {
    LinearScale s(-5.0, 5.0);
    for (double x : {-2.0, 1.5, 3.0, -4.0}) s.insert_split(x, nullptr);
    double cursor = -5.0;
    for (std::uint32_t i = 0; i < s.intervals(); ++i) {
        EXPECT_DOUBLE_EQ(s.interval_lo(i), cursor);
        EXPECT_GT(s.interval_hi(i), s.interval_lo(i));
        cursor = s.interval_hi(i);
    }
    EXPECT_DOUBLE_EQ(cursor, 5.0);
}

TEST(LinearScale, LocateConsistentWithIntervalBounds) {
    LinearScale s(0.0, 1.0);
    for (double x : {0.31, 0.77, 0.12, 0.55}) s.insert_split(x, nullptr);
    for (std::uint32_t i = 0; i < s.intervals(); ++i) {
        EXPECT_EQ(s.locate(s.interval_lo(i)), i);
        double mid = 0.5 * (s.interval_lo(i) + s.interval_hi(i));
        EXPECT_EQ(s.locate(mid), i);
    }
}

}  // namespace
}  // namespace pgf
