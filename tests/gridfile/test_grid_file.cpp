#include "pgf/gridfile/grid_file.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "pgf/util/rng.hpp"

namespace pgf {
namespace {

Rect<2> unit_square() { return Rect<2>{{{0.0, 0.0}}, {{1.0, 1.0}}}; }

GridFile<2>::Config small_buckets(std::size_t capacity = 4) {
    GridFile<2>::Config c;
    c.bucket_capacity = capacity;
    return c;
}

/// Brute-force range query over a record list for cross-checking.
std::vector<std::uint64_t> brute_force(const std::vector<Point<2>>& pts,
                                       const Rect<2>& q) {
    std::vector<std::uint64_t> ids;
    for (std::size_t i = 0; i < pts.size(); ++i) {
        if (q.contains(pts[i])) ids.push_back(i);
    }
    return ids;
}

std::vector<std::uint64_t> sorted_ids(const std::vector<GridRecord<2>>& recs) {
    std::vector<std::uint64_t> ids;
    ids.reserve(recs.size());
    for (const auto& r : recs) ids.push_back(r.id);
    std::sort(ids.begin(), ids.end());
    return ids;
}

TEST(GridFile, EmptyFileHasOneBucket) {
    GridFile<2> gf(unit_square(), small_buckets());
    EXPECT_EQ(gf.bucket_count(), 1u);
    EXPECT_EQ(gf.record_count(), 0u);
    EXPECT_EQ(gf.grid_shape(), (std::array<std::uint32_t, 2>{1, 1}));
    EXPECT_EQ(gf.merged_bucket_count(), 0u);
}

TEST(GridFile, InsertWithinCapacityNoSplit) {
    GridFile<2> gf(unit_square(), small_buckets(4));
    gf.insert({{0.1, 0.1}}, 0);
    gf.insert({{0.9, 0.9}}, 1);
    EXPECT_EQ(gf.bucket_count(), 1u);
    EXPECT_EQ(gf.record_count(), 2u);
}

TEST(GridFile, OverflowTriggersSplit) {
    GridFile<2> gf(unit_square(), small_buckets(2));
    gf.insert({{0.1, 0.5}}, 0);
    gf.insert({{0.9, 0.5}}, 1);
    gf.insert({{0.5, 0.1}}, 2);  // third record overflows capacity 2
    EXPECT_GE(gf.bucket_count(), 2u);
    EXPECT_EQ(gf.record_count(), 3u);
    // No bucket exceeds capacity after the split.
    EXPECT_EQ(gf.oversized_bucket_count(), 0u);
}

TEST(GridFile, RejectsTinyCapacity) {
    GridFile<2>::Config c;
    c.bucket_capacity = 1;
    EXPECT_THROW(GridFile<2>(unit_square(), c), CheckError);
}

TEST(GridFile, BucketCapacityInvariantHoldsUnderLoad) {
    GridFile<2> gf(unit_square(), small_buckets(8));
    Rng rng(17);
    for (std::uint64_t i = 0; i < 2000; ++i) {
        gf.insert({{rng.uniform(), rng.uniform()}}, i);
    }
    EXPECT_EQ(gf.oversized_bucket_count(), 0u);
    std::size_t total = 0;
    for (std::uint32_t b = 0; b < gf.bucket_count(); ++b) {
        EXPECT_LE(gf.bucket(b).records.size(), 8u);
        total += gf.bucket(b).records.size();
    }
    EXPECT_EQ(total, 2000u);
}

TEST(GridFile, EveryRecordLandsInItsBucketRegion) {
    GridFile<2> gf(unit_square(), small_buckets(6));
    Rng rng(23);
    for (std::uint64_t i = 0; i < 1000; ++i) {
        gf.insert({{rng.uniform(), rng.uniform()}}, i);
    }
    for (std::uint32_t b = 0; b < gf.bucket_count(); ++b) {
        Rect<2> region = gf.bucket_region(b);
        for (const auto& rec : gf.bucket(b).records) {
            EXPECT_TRUE(region.contains(rec.point))
                << "bucket " << b << " record " << rec.id;
        }
    }
}

TEST(GridFile, DirectoryCellsAgreeWithBucketBoxes) {
    GridFile<2> gf(unit_square(), small_buckets(4));
    Rng rng(31);
    for (std::uint64_t i = 0; i < 500; ++i) {
        gf.insert({{rng.uniform(), rng.uniform()}}, i);
    }
    const auto shape = gf.grid_shape();
    std::uint64_t covered = 0;
    for (std::uint32_t b = 0; b < gf.bucket_count(); ++b) {
        const CellBox<2>& box = gf.bucket(b).cells;
        for_each_cell(box, [&](const std::array<std::uint32_t, 2>& cell) {
            EXPECT_EQ(gf.directory().at(cell), b);
        });
        covered += box.cell_count();
    }
    EXPECT_EQ(covered, static_cast<std::uint64_t>(shape[0]) * shape[1]);
}

TEST(GridFile, RangeQueryMatchesBruteForce) {
    Rng rng(37);
    std::vector<Point<2>> pts;
    GridFile<2> gf(unit_square(), small_buckets(5));
    for (std::uint64_t i = 0; i < 1500; ++i) {
        Point<2> p{{rng.uniform(), rng.uniform()}};
        pts.push_back(p);
        gf.insert(p, i);
    }
    for (int t = 0; t < 200; ++t) {
        double x0 = rng.uniform(), y0 = rng.uniform();
        double w = rng.uniform(0.01, 0.4), h = rng.uniform(0.01, 0.4);
        Rect<2> q{{{x0, y0}}, {{x0 + w, y0 + h}}};
        auto expected = brute_force(pts, q);
        auto got = sorted_ids(gf.query_records(q));
        ASSERT_EQ(got, expected) << "query " << t;
    }
}

TEST(GridFile, QueryBucketsSupersetOfRecordBuckets) {
    GridFile<2> gf(unit_square(), small_buckets(4));
    Rng rng(41);
    for (std::uint64_t i = 0; i < 800; ++i) {
        gf.insert({{rng.uniform(), rng.uniform()}}, i);
    }
    Rect<2> q{{{0.2, 0.2}}, {{0.5, 0.6}}};
    auto buckets = gf.query_buckets(q);
    std::set<std::uint32_t> bucket_set(buckets.begin(), buckets.end());
    // Buckets are reported at most once.
    EXPECT_EQ(bucket_set.size(), buckets.size());
    // Every record in the result lives in a reported bucket region.
    for (const auto& rec : gf.query_records(q)) {
        auto cell = gf.locate_cell(rec.point);
        EXPECT_TRUE(bucket_set.count(gf.directory().at(cell)) > 0);
    }
}

TEST(GridFile, QueryOutsideDomainIsEmpty) {
    GridFile<2> gf(unit_square(), small_buckets());
    gf.insert({{0.5, 0.5}}, 0);
    Rect<2> off{{{2.0, 2.0}}, {{3.0, 3.0}}};
    EXPECT_TRUE(gf.query_buckets(off).empty());
    EXPECT_TRUE(gf.query_records(off).empty());
    Rect<2> degenerate{{{0.5, 0.5}}, {{0.5, 0.9}}};
    EXPECT_TRUE(gf.query_buckets(degenerate).empty());
}

TEST(GridFile, QueryOverhangingDomainIsClipped) {
    GridFile<2> gf(unit_square(), small_buckets());
    gf.insert({{0.05, 0.05}}, 0);
    gf.insert({{0.95, 0.95}}, 1);
    Rect<2> q{{{-1.0, -1.0}}, {{0.2, 0.2}}};
    auto recs = gf.query_records(q);
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].id, 0u);
}

TEST(GridFile, WholeDomainQueryReturnsEverything) {
    GridFile<2> gf(unit_square(), small_buckets(3));
    Rng rng(43);
    for (std::uint64_t i = 0; i < 300; ++i) {
        gf.insert({{rng.uniform(), rng.uniform()}}, i);
    }
    Rect<2> all{{{0.0, 0.0}}, {{1.0, 1.0}}};
    EXPECT_EQ(gf.query_records(all).size(), 300u);
    EXPECT_EQ(gf.query_buckets(all).size(), gf.bucket_count());
}

TEST(GridFile, OutOfDomainInsertClampsToBoundaryCell) {
    GridFile<2> gf(unit_square(), small_buckets());
    gf.insert({{5.0, -2.0}}, 99);
    EXPECT_EQ(gf.record_count(), 1u);
    // Clamped record is findable through a boundary query on its cell.
    auto cell = gf.locate_cell({{5.0, -2.0}});
    EXPECT_EQ(cell[0], gf.grid_shape()[0] - 1);
    EXPECT_EQ(cell[1], 0u);
}

TEST(GridFile, EraseRemovesExactRecord) {
    GridFile<2> gf(unit_square(), small_buckets());
    Point<2> p{{0.3, 0.3}};
    gf.insert(p, 1);
    gf.insert(p, 2);
    EXPECT_TRUE(gf.erase(p, 1));
    EXPECT_EQ(gf.record_count(), 1u);
    EXPECT_FALSE(gf.erase(p, 1));  // already gone
    EXPECT_FALSE(gf.erase({{0.9, 0.9}}, 2));  // wrong location
    EXPECT_TRUE(gf.erase(p, 2));
    EXPECT_EQ(gf.record_count(), 0u);
}

TEST(GridFile, DuplicatePointsStayRetrievable) {
    GridFile<2> gf(unit_square(), small_buckets(2));
    Point<2> p{{0.25, 0.75}};
    for (std::uint64_t i = 0; i < 20; ++i) gf.insert(p, i);
    Rect<2> q{{{0.2, 0.7}}, {{0.3, 0.8}}};
    EXPECT_EQ(gf.query_records(q).size(), 20u);
    // Identical points cannot be separated: the file must cope via an
    // oversized bucket rather than splitting forever.
    EXPECT_GE(gf.oversized_bucket_count(), 1u);
}

TEST(GridFile, SkewedDataProducesMergedBuckets) {
    // A tight cluster forces fine grid refinement near the cluster; the
    // far-away sparse region keeps coarse multi-cell buckets.
    GridFile<2> gf(unit_square(), small_buckets(4));
    Rng rng(47);
    for (std::uint64_t i = 0; i < 400; ++i) {
        gf.insert({{0.1 + 0.05 * rng.uniform(), 0.1 + 0.05 * rng.uniform()}},
                  i);
    }
    gf.insert({{0.9, 0.9}}, 1000);
    EXPECT_GT(gf.merged_bucket_count(), 0u);
}

TEST(GridFile, UniformDataProducesFewMergedBuckets) {
    GridFile<2> gf(unit_square(), small_buckets(8));
    Rng rng(53);
    for (std::uint64_t i = 0; i < 2000; ++i) {
        gf.insert({{rng.uniform(), rng.uniform()}}, i);
    }
    // Merged buckets are those still awaiting a split mid-cascade; for
    // uniform data they must stay a clear minority of cells... but at this
    // tiny capacity the refinement cascade is only half done, so simply
    // bound the fraction away from "everything merged". The paper-scale
    // assertion (4 of 252 for uniform.2d vs 169 of 241 for hot.2d) lives in
    // workload/test_datasets.cpp with the real generator parameters.
    EXPECT_LT(gf.merged_bucket_count(), gf.bucket_count());
}

TEST(GridFile, MedianSplitPolicyBalancesSkew) {
    GridFile<2>::Config cfg;
    cfg.bucket_capacity = 8;
    cfg.split_policy = SplitPolicy::kMedian;
    GridFile<2> gf(unit_square(), cfg);
    Rng rng(59);
    // Exponential-ish skew toward the origin.
    for (std::uint64_t i = 0; i < 1000; ++i) {
        double x = rng.uniform() * rng.uniform();
        double y = rng.uniform() * rng.uniform();
        gf.insert({{x, y}}, i);
    }
    EXPECT_EQ(gf.oversized_bucket_count(), 0u);
    Rect<2> all{{{0.0, 0.0}}, {{1.0, 1.0}}};
    EXPECT_EQ(gf.query_records(all).size(), 1000u);
}

TEST(GridFile, ThreeDimensionalRoundTrip) {
    Rect<3> cube{{{0.0, 0.0, 0.0}}, {{1.0, 1.0, 1.0}}};
    GridFile<3>::Config cfg;
    cfg.bucket_capacity = 6;
    GridFile<3> gf(cube, cfg);
    Rng rng(61);
    std::vector<Point<3>> pts;
    for (std::uint64_t i = 0; i < 600; ++i) {
        Point<3> p{{rng.uniform(), rng.uniform(), rng.uniform()}};
        pts.push_back(p);
        gf.insert(p, i);
    }
    Rect<3> q{{{0.25, 0.25, 0.25}}, {{0.75, 0.75, 0.75}}};
    std::size_t expected = 0;
    for (const auto& p : pts) expected += q.contains(p) ? 1u : 0u;
    EXPECT_EQ(gf.query_records(q).size(), expected);
}

TEST(GridFile, OneDimensionalDegenerateCase) {
    Rect<1> line{{{0.0}}, {{10.0}}};
    GridFile<1>::Config cfg;
    cfg.bucket_capacity = 2;
    GridFile<1> gf(line, cfg);
    for (std::uint64_t i = 0; i < 20; ++i) {
        gf.insert({{static_cast<double>(i) * 0.5}}, i);
    }
    Rect<1> q{{{2.0}}, {{4.0}}};
    EXPECT_EQ(gf.query_records(q).size(), 4u);  // 2.0, 2.5, 3.0, 3.5
}

TEST(GridFile, StructureExportIsConsistent) {
    GridFile<2> gf(unit_square(), small_buckets(4));
    Rng rng(67);
    for (std::uint64_t i = 0; i < 700; ++i) {
        gf.insert({{rng.uniform(), rng.uniform()}}, i);
    }
    GridStructure gs = gf.structure();
    EXPECT_NO_THROW(gs.validate());
    EXPECT_EQ(gs.bucket_count(), gf.bucket_count());
    EXPECT_EQ(gs.merged_bucket_count(), gf.merged_bucket_count());
    EXPECT_EQ(gs.shape[0], gf.grid_shape()[0]);
    EXPECT_EQ(gs.shape[1], gf.grid_shape()[1]);
    std::size_t records = 0;
    for (const auto& b : gs.buckets) records += b.record_count;
    EXPECT_EQ(records, gf.record_count());
}

TEST(GridFile, BulkLoadAssignsSequentialIds) {
    GridFile<2> gf(unit_square(), small_buckets());
    std::vector<Point<2>> pts{{{0.1, 0.1}}, {{0.2, 0.2}}, {{0.3, 0.3}}};
    gf.bulk_load(pts, 100);
    Rect<2> all{{{0.0, 0.0}}, {{1.0, 1.0}}};
    auto ids = sorted_ids(gf.query_records(all));
    EXPECT_EQ(ids, (std::vector<std::uint64_t>{100, 101, 102}));
}

TEST(GridFile, QueryAfterManySplitsStillExact) {
    // Heavy load with a mix of clusters: stresses directory expansion,
    // cell-box shifting, and bucket splits together.
    GridFile<2> gf(unit_square(), small_buckets(3));
    Rng rng(71);
    std::vector<Point<2>> pts;
    for (std::uint64_t i = 0; i < 3000; ++i) {
        Point<2> p;
        if (i % 3 == 0) {
            p = {{rng.normal(0.3, 0.05), rng.normal(0.7, 0.05)}};
            p[0] = std::clamp(p[0], 0.0, 0.999);
            p[1] = std::clamp(p[1], 0.0, 0.999);
        } else {
            p = {{rng.uniform(), rng.uniform()}};
        }
        pts.push_back(p);
        gf.insert(p, i);
    }
    for (int t = 0; t < 100; ++t) {
        double x0 = rng.uniform(0.0, 0.8), y0 = rng.uniform(0.0, 0.8);
        Rect<2> q{{{x0, y0}}, {{x0 + 0.15, y0 + 0.15}}};
        ASSERT_EQ(sorted_ids(gf.query_records(q)), brute_force(pts, q));
    }
}

}  // namespace
}  // namespace pgf
