#include "pgf/gridfile/partial_match.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "pgf/gridfile/grid_file.hpp"
#include "pgf/util/rng.hpp"

namespace pgf {
namespace {

TEST(PartialMatch, CountsAndValidity) {
    auto q = make_partial_match(std::optional<double>(1.0),
                                std::optional<double>(),
                                std::optional<double>(3.0));
    EXPECT_EQ(q.specified_count(), 2u);
    EXPECT_EQ(q.unspecified_count(), 1u);
    EXPECT_TRUE(q.valid());

    PartialMatch<2> exact;
    exact.key = {1.0, 2.0};
    EXPECT_FALSE(exact.valid());

    PartialMatch<2> open;
    EXPECT_TRUE(open.valid());
    EXPECT_EQ(open.unspecified_count(), 2u);
}

struct LoadedFile {
    Rect<2> domain{{{0.0, 0.0}}, {{10.0, 10.0}}};
    GridFile<2> gf;
    std::vector<Point<2>> pts;

    LoadedFile() : gf(domain, {.bucket_capacity = 4}) {
        Rng rng(3);
        for (std::uint64_t i = 0; i < 800; ++i) {
            // Snap x to a lattice so exact-match predicates have hits.
            Point<2> p{{static_cast<double>(rng.uniform_int(0, 9)) + 0.5,
                        rng.uniform(0.0, 10.0)}};
            pts.push_back(p);
            gf.insert(p, i);
        }
    }
};

TEST(PartialMatch, RecordsMatchBruteForce) {
    LoadedFile f;
    for (double x = 0.5; x < 10.0; x += 1.0) {
        PartialMatch<2> q;
        q.key[0] = x;  // A_1 = x, A_2 unspecified
        auto got = f.gf.query_records(q);
        std::size_t expected = 0;
        for (const auto& p : f.pts) expected += p[0] == x ? 1u : 0u;
        EXPECT_EQ(got.size(), expected) << "x=" << x;
        for (const auto& rec : got) EXPECT_EQ(rec.point[0], x);
    }
}

TEST(PartialMatch, FullyUnspecifiedTouchesEveryBucket) {
    LoadedFile f;
    PartialMatch<2> q;  // both axes unspecified
    auto buckets = f.gf.query_buckets(q);
    EXPECT_EQ(buckets.size(), f.gf.bucket_count());
    EXPECT_EQ(f.gf.query_records(q).size(), f.pts.size());
}

TEST(PartialMatch, SpecifiedAxisRestrictsBuckets) {
    LoadedFile f;
    PartialMatch<2> q;
    q.key[0] = 2.5;
    auto buckets = f.gf.query_buckets(q);
    EXPECT_LT(buckets.size(), f.gf.bucket_count());
    // Every returned bucket's region must contain x = 2.5.
    for (auto b : buckets) {
        Rect<2> region = f.gf.bucket_region(b);
        EXPECT_LE(region.lo[0], 2.5);
        EXPECT_GT(region.hi[0], 2.5);
    }
}

TEST(PartialMatch, BucketsAreDeduplicated) {
    LoadedFile f;
    PartialMatch<2> q;
    q.key[1] = 5.0;
    auto buckets = f.gf.query_buckets(q);
    std::sort(buckets.begin(), buckets.end());
    EXPECT_TRUE(std::adjacent_find(buckets.begin(), buckets.end()) ==
                buckets.end());
}

TEST(PartialMatch, ExactMatchQueryRejected) {
    LoadedFile f;
    PartialMatch<2> q;
    q.key = {1.0, 2.0};
    EXPECT_THROW(f.gf.query_buckets(q), CheckError);
}

TEST(PartialMatch, ThreeDimensionalTwoSpecified) {
    Rect<3> domain{{{0.0, 0.0, 0.0}}, {{4.0, 4.0, 4.0}}};
    GridFile<3> gf(domain, {.bucket_capacity = 3});
    Rng rng(7);
    std::vector<Point<3>> pts;
    for (std::uint64_t i = 0; i < 400; ++i) {
        Point<3> p{{static_cast<double>(rng.uniform_int(0, 3)) + 0.5,
                    static_cast<double>(rng.uniform_int(0, 3)) + 0.5,
                    rng.uniform(0.0, 4.0)}};
        pts.push_back(p);
        gf.insert(p, i);
    }
    PartialMatch<3> q;
    q.key[0] = 1.5;
    q.key[1] = 2.5;
    auto got = gf.query_records(q);
    std::size_t expected = 0;
    for (const auto& p : pts) {
        expected += (p[0] == 1.5 && p[1] == 2.5) ? 1u : 0u;
    }
    EXPECT_EQ(got.size(), expected);
}

}  // namespace
}  // namespace pgf
