#include "pgf/gridfile/cartesian_file.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "pgf/decluster/registry.hpp"
#include "pgf/disksim/simulator.hpp"
#include "pgf/util/rng.hpp"
#include "pgf/workload/query_gen.hpp"

namespace pgf {
namespace {

Rect<2> unit_square() { return Rect<2>{{{0.0, 0.0}}, {{1.0, 1.0}}}; }

TEST(CartesianFile, FixedBucketGrid) {
    CartesianFile<2> cf(unit_square(), {4, 3});
    EXPECT_EQ(cf.bucket_count(), 12u);
    EXPECT_EQ(cf.record_count(), 0u);
    cf.insert({{0.1, 0.1}}, 0);
    cf.insert({{0.99, 0.99}}, 1);
    EXPECT_EQ(cf.bucket_count(), 12u);  // never grows
    EXPECT_EQ(cf.record_count(), 2u);
}

TEST(CartesianFile, CellLocationIsRegular) {
    CartesianFile<2> cf(unit_square(), {4, 4});
    EXPECT_EQ(cf.locate_cell({{0.0, 0.0}}),
              (std::array<std::uint32_t, 2>{0, 0}));
    EXPECT_EQ(cf.locate_cell({{0.25, 0.5}}),
              (std::array<std::uint32_t, 2>{1, 2}));
    EXPECT_EQ(cf.locate_cell({{0.999, 0.999}}),
              (std::array<std::uint32_t, 2>{3, 3}));
    // Out-of-domain clamps.
    EXPECT_EQ(cf.locate_cell({{-1.0, 5.0}}),
              (std::array<std::uint32_t, 2>{0, 3}));
}

TEST(CartesianFile, RangeQueryMatchesBruteForce) {
    CartesianFile<2> cf(unit_square(), {8, 8});
    Rng rng(3);
    std::vector<Point<2>> pts;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        Point<2> p{{rng.uniform(), rng.uniform()}};
        pts.push_back(p);
        cf.insert(p, i);
    }
    for (int t = 0; t < 100; ++t) {
        double x0 = rng.uniform(), y0 = rng.uniform();
        Rect<2> q{{{x0, y0}}, {{x0 + 0.3, y0 + 0.3}}};
        auto got = cf.query_records(q);
        std::vector<std::uint64_t> ids;
        for (const auto& r : got) ids.push_back(r.id);
        std::sort(ids.begin(), ids.end());
        std::vector<std::uint64_t> expected;
        for (std::size_t i = 0; i < pts.size(); ++i) {
            if (q.contains(pts[i])) expected.push_back(i);
        }
        ASSERT_EQ(ids, expected) << "query " << t;
    }
}

TEST(CartesianFile, QueryBucketsExactCellCount) {
    CartesianFile<2> cf(unit_square(), {10, 10});
    // A query covering [0.15, 0.35) x [0.0, 1.0) spans cells 1..3 x 0..9.
    Rect<2> q{{{0.15, 0.0}}, {{0.35, 1.0}}};
    EXPECT_EQ(cf.query_buckets(q).size(), 3u * 10u);
    // Boundary-aligned query does not leak into the next column.
    Rect<2> aligned{{{0.1, 0.0}}, {{0.2, 1.0}}};
    EXPECT_EQ(cf.query_buckets(aligned).size(), 10u);
}

TEST(CartesianFile, PartialMatchBuckets) {
    CartesianFile<3> cf(Rect<3>{{{0.0, 0.0, 0.0}}, {{1.0, 1.0, 1.0}}},
                        {4, 5, 6});
    PartialMatch<3> q;
    q.key[1] = 0.55;  // pins one of 5 intervals
    EXPECT_EQ(cf.query_buckets(q).size(), 4u * 6u);
    PartialMatch<3> q2;
    q2.key[0] = 0.1;
    q2.key[2] = 0.9;
    EXPECT_EQ(cf.query_buckets(q2).size(), 5u);
}

TEST(CartesianFile, SkewGrowsBucketsUnboundedly) {
    // The structural weakness vs grid files: a hot cell just gets bigger.
    CartesianFile<2> cf(unit_square(), {4, 4});
    for (std::uint64_t i = 0; i < 500; ++i) {
        cf.insert({{0.1, 0.1}}, i);
    }
    EXPECT_EQ(cf.max_bucket_size(), 500u);
}

TEST(CartesianFile, StructureMatchesShape) {
    CartesianFile<2> cf(unit_square(), {3, 3});
    cf.insert({{0.9, 0.9}}, 7);
    GridStructure gs = cf.structure();
    EXPECT_NO_THROW(gs.validate());
    EXPECT_EQ(gs.bucket_count(), 9u);
    EXPECT_EQ(gs.merged_bucket_count(), 0u);
    EXPECT_EQ(gs.buckets.back().record_count, 1u);
}

TEST(CartesianFile, RejectsDegenerateConstruction) {
    EXPECT_THROW(CartesianFile<2>(unit_square(), {0, 4}), CheckError);
    Rect<2> empty{{{0.0, 0.0}}, {{0.0, 1.0}}};
    EXPECT_THROW(CartesianFile<2>(empty, {2, 2}), CheckError);
}

TEST(CartesianFile, UniformGridFileBehavesLikeCartesianFile) {
    // The paper's Sec. 2.2.1 argument: uniform.2d's grid file is almost a
    // Cartesian product file, so declustering response times should nearly
    // coincide with those on the true Cartesian file of the same grid.
    Rng rng(7);
    Rect<2> domain{{{0.0, 0.0}}, {{2000.0, 2000.0}}};
    GridFile<2> gf(domain, {.bucket_capacity = 56});
    std::vector<Point<2>> pts;
    for (std::uint64_t i = 0; i < 10000; ++i) {
        Point<2> p{{rng.uniform(0.0, 2000.0), rng.uniform(0.0, 2000.0)}};
        pts.push_back(p);
        gf.insert(p, i);
    }
    auto shape = gf.grid_shape();
    CartesianFile<2> cf(domain, shape);
    cf.bulk_load(pts);

    Rng qrng(9);
    auto queries = square_queries(domain, 0.05, 300, qrng);
    auto gf_qb = collect_query_buckets(gf, queries);
    std::vector<std::vector<std::uint32_t>> cf_qb;
    for (const auto& q : queries) cf_qb.push_back(cf.query_buckets(q));

    for (Method m : {Method::kDiskModulo, Method::kHilbert}) {
        Assignment ga = decluster(gf.structure(), m, 16, {.seed = 4});
        Assignment ca = decluster(cf.structure(), m, 16, {.seed = 4});
        double g = evaluate_workload(gf_qb, ga).avg_response;
        double c = evaluate_workload(cf_qb, ca).avg_response;
        EXPECT_NEAR(g, c, 0.25 * c) << to_string(m);
    }
}

}  // namespace
}  // namespace pgf
