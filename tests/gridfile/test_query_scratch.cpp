// QueryScratch equivalence: the allocation-free overloads of
// query_buckets/query_records must return exactly what the allocating
// convenience wrappers return — same buckets, same order — while a single
// scratch object is reused across queries, query kinds, and grid files.
#include "pgf/gridfile/grid_file.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "pgf/util/rng.hpp"
#include "pgf/workload/datasets.hpp"
#include "pgf/workload/query_gen.hpp"

namespace pgf {
namespace {

TEST(QueryScratch, VisitDeduplicatesWithinAnEpoch) {
    QueryScratch scratch;
    scratch.begin(4);
    EXPECT_TRUE(scratch.visit(2));
    EXPECT_FALSE(scratch.visit(2));
    EXPECT_TRUE(scratch.visit(0));
    // New epoch forgets everything without clearing storage.
    scratch.begin(4);
    EXPECT_TRUE(scratch.visit(2));
    // Growing the universe keeps already-stamped entries valid.
    scratch.begin(8);
    EXPECT_TRUE(scratch.visit(7));
    EXPECT_FALSE(scratch.visit(7));
}

TEST(QueryScratch, RangeQueriesMatchAllocatingPath) {
    Rng rng(11);
    auto ds = make_hotspot2d(rng, 4000);
    GridFile<2> gf = ds.build();
    Rng qrng(12);
    auto queries = square_queries(ds.domain, 0.08, 64, qrng);

    QueryScratch scratch;
    std::vector<std::uint32_t> buckets;
    std::vector<GridRecord<2>> records;
    for (const auto& q : queries) {
        gf.query_buckets(q, scratch, buckets);
        EXPECT_EQ(buckets, gf.query_buckets(q));
        gf.query_records(q, scratch, records);
        auto expected = gf.query_records(q);
        ASSERT_EQ(records.size(), expected.size());
        for (std::size_t i = 0; i < records.size(); ++i) {
            EXPECT_EQ(records[i].id, expected[i].id);
        }
    }
}

TEST(QueryScratch, PartialMatchQueriesMatchAllocatingPath) {
    Rng rng(13);
    auto ds = make_hotspot2d(rng, 4000);
    GridFile<2> gf = ds.build();

    QueryScratch scratch;
    std::vector<std::uint32_t> buckets;
    std::vector<GridRecord<2>> records;
    Rng qrng(14);
    for (int i = 0; i < 32; ++i) {
        PartialMatch<2> q;
        // Alternate which attribute is pinned.
        std::size_t pinned = static_cast<std::size_t>(i) % 2;
        q.key[pinned] = qrng.uniform(ds.domain.lo[pinned],
                                     ds.domain.hi[pinned]);
        gf.query_buckets(q, scratch, buckets);
        EXPECT_EQ(buckets, gf.query_buckets(q));
        gf.query_records(q, scratch, records);
        auto expected = gf.query_records(q);
        ASSERT_EQ(records.size(), expected.size());
        for (std::size_t j = 0; j < records.size(); ++j) {
            EXPECT_EQ(records[j].id, expected[j].id);
        }
    }
}

TEST(QueryScratch, ReusableAcrossGridFilesOfDifferentSizes) {
    QueryScratch scratch;
    std::vector<std::uint32_t> buckets;
    Rng rng(15);
    for (std::size_t n : {500u, 8000u, 1000u}) {
        auto ds = make_hotspot2d(rng, n);
        GridFile<2> gf = ds.build();
        Rng qrng(16);
        for (const auto& q : square_queries(ds.domain, 0.1, 16, qrng)) {
            gf.query_buckets(q, scratch, buckets);
            EXPECT_EQ(buckets, gf.query_buckets(q));
        }
    }
}

TEST(QueryScratch, EmptyQueryYieldsEmptyOutput) {
    Rng rng(17);
    auto ds = make_hotspot2d(rng, 1000);
    GridFile<2> gf = ds.build();
    QueryScratch scratch;
    std::vector<std::uint32_t> buckets{99};  // stale content must be cleared
    Rect<2> outside{{{-5.0, -5.0}}, {{-4.0, -4.0}}};
    gf.query_buckets(outside, scratch, buckets);
    EXPECT_TRUE(buckets.empty());
}

}  // namespace
}  // namespace pgf
