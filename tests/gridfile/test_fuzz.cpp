// Model-based fuzzing of the grid file: random interleavings of insert,
// erase and range query are checked against a trivially correct reference
// (a flat record list). Each parameterized instance uses a different seed
// and bucket capacity, including adversarial duplicate-heavy inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "pgf/gridfile/grid_file.hpp"
#include "pgf/util/rng.hpp"

namespace pgf {
namespace {

struct ModelRecord {
    Point<2> point;
    std::uint64_t id;
};

class GridFileFuzz
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
};

TEST_P(GridFileFuzz, MatchesReferenceModelUnderRandomOps) {
    auto [seed, capacity] = GetParam();
    Rng rng(seed);
    Rect<2> domain{{{0.0, 0.0}}, {{1.0, 1.0}}};
    GridFile<2>::Config cfg;
    cfg.bucket_capacity = capacity;
    cfg.split_policy =
        seed % 2 == 0 ? SplitPolicy::kMidpoint : SplitPolicy::kMedian;
    GridFile<2> gf(domain, cfg);
    std::vector<ModelRecord> model;
    std::uint64_t next_id = 0;

    auto random_point = [&]() -> Point<2> {
        double roll = rng.uniform();
        if (roll < 0.5) {
            return {{rng.uniform(), rng.uniform()}};
        }
        if (roll < 0.8) {  // clustered
            return {{std::clamp(rng.normal(0.25, 0.03), 0.0, 0.999),
                     std::clamp(rng.normal(0.75, 0.03), 0.0, 0.999)}};
        }
        // Duplicate-heavy lattice: forces oversized-bucket handling.
        return {{static_cast<double>(rng.uniform_int(0, 4)) * 0.2 + 0.1,
                 static_cast<double>(rng.uniform_int(0, 4)) * 0.2 + 0.1}};
    };

    for (int op = 0; op < 3000; ++op) {
        double roll = rng.uniform();
        if (roll < 0.62 || model.empty()) {
            Point<2> p = random_point();
            gf.insert(p, next_id);
            model.push_back({p, next_id});
            ++next_id;
        } else if (roll < 0.77) {
            // Erase a random existing record.
            std::size_t k = rng.below(static_cast<std::uint32_t>(model.size()));
            ASSERT_TRUE(gf.erase(model[k].point, model[k].id));
            model[k] = model.back();
            model.pop_back();
        } else if (roll < 0.82) {
            // Erase something that does not exist.
            EXPECT_FALSE(gf.erase(random_point(), 0xdeadbeef));
        } else {
            // Range query vs model.
            double x0 = rng.uniform(-0.1, 1.0), y0 = rng.uniform(-0.1, 1.0);
            double w = rng.uniform(0.0, 0.5), h = rng.uniform(0.0, 0.5);
            Rect<2> q{{{x0, y0}}, {{x0 + w, y0 + h}}};
            auto got = gf.query_records(q);
            std::vector<std::uint64_t> got_ids;
            for (const auto& r : got) got_ids.push_back(r.id);
            std::sort(got_ids.begin(), got_ids.end());
            std::vector<std::uint64_t> expected;
            for (const auto& r : model) {
                if (q.contains(r.point)) expected.push_back(r.id);
            }
            std::sort(expected.begin(), expected.end());
            ASSERT_EQ(got_ids, expected) << "op " << op;
        }
        if (op % 500 == 0) {
            ASSERT_EQ(gf.record_count(), model.size());
            ASSERT_NO_THROW(gf.structure().validate());
        }
    }
    // Final full-domain check.
    Rect<2> all{{{0.0, 0.0}}, {{1.0, 1.0}}};
    EXPECT_EQ(gf.query_records(all).size(), model.size());
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, GridFileFuzz,
    ::testing::Values(std::tuple<std::uint64_t, std::size_t>{1, 2},
                      std::tuple<std::uint64_t, std::size_t>{2, 3},
                      std::tuple<std::uint64_t, std::size_t>{3, 8},
                      std::tuple<std::uint64_t, std::size_t>{4, 16},
                      std::tuple<std::uint64_t, std::size_t>{5, 64},
                      std::tuple<std::uint64_t, std::size_t>{6, 5},
                      std::tuple<std::uint64_t, std::size_t>{7, 11},
                      std::tuple<std::uint64_t, std::size_t>{8, 32}),
    [](const auto& param_info) {
        return "seed" + std::to_string(std::get<0>(param_info.param)) + "cap" +
               std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace pgf
