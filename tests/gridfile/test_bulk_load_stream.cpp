// bulk_load_stream golden tests: the streaming loader must produce a grid
// file byte-identical to an in-memory bulk_load of the same point
// sequence — same scales, directory, bucket numbering, cell boxes and
// per-bucket record order — on both backends, for any chunking of the
// stream, including through the paged store's deferred batch sessions and
// under a pool small enough to thrash during the build.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <span>
#include <vector>

#include "pgf/core/point_source.hpp"
#include "pgf/gridfile/grid_file.hpp"
#include "pgf/storage/paged_grid_file.hpp"
#include "pgf/util/rng.hpp"
#include "pgf/util/temp_dir.hpp"

namespace pgf {
namespace {

template <std::size_t D>
std::vector<Point<D>> random_points(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<Point<D>> pts(n);
    for (auto& p : pts) {
        for (std::size_t i = 0; i < D; ++i) p[i] = rng.uniform();
    }
    return pts;
}

/// A source that deliberately returns ragged short fills (cycling block
/// sizes 1, 7, 64, 256, 1000) to prove chunking independence.
template <std::size_t D>
class RaggedSource final : public PointSource<D> {
public:
    explicit RaggedSource(const std::vector<Point<D>>& pts) : pts_(pts) {}

    std::size_t next(std::span<Point<D>> out) override {
        static constexpr std::size_t kSizes[] = {1, 7, 64, 256, 1000};
        const std::size_t want =
            std::min(out.size(), kSizes[turn_++ % std::size(kSizes)]);
        std::size_t k = 0;
        while (k < want && pos_ < pts_.size()) out[k++] = pts_[pos_++];
        return k;
    }

private:
    const std::vector<Point<D>>& pts_;
    std::size_t pos_ = 0;
    std::size_t turn_ = 0;
};

/// Structural identity of two grid files over the same engine (mirrors
/// the backend-equivalence comparator, generic over both file types).
template <typename FileA, typename FileB>
void expect_identical(const FileA& a, const FileB& b) {
    constexpr std::size_t D = FileA::kDims;
    ASSERT_EQ(a.record_count(), b.record_count());
    ASSERT_EQ(a.bucket_count(), b.bucket_count());
    ASSERT_EQ(a.refinement_count(), b.refinement_count());
    for (std::size_t i = 0; i < D; ++i) {
        ASSERT_EQ(a.scale(i).splits(), b.scale(i).splits()) << "axis " << i;
    }
    ASSERT_EQ(a.grid_shape(), b.grid_shape());

    CellBox<D> all;
    all.lo.fill(0);
    all.hi = a.grid_shape();
    for_each_cell(all, [&](const std::array<std::uint32_t, D>& cell) {
        ASSERT_EQ(a.directory().at(cell), b.directory().at(cell));
    });

    for (std::uint32_t bid = 0; bid < a.bucket_count(); ++bid) {
        ASSERT_EQ(a.bucket_cells(bid).lo, b.bucket_cells(bid).lo) << bid;
        ASSERT_EQ(a.bucket_cells(bid).hi, b.bucket_cells(bid).hi) << bid;
        const auto& ra = a.bucket_records(bid);
        // Copy: on a paged file the read buffer is invalidated by the
        // next read, and `b` may be the same object type as `a`.
        const auto rb = b.bucket_records(bid);
        ASSERT_EQ(ra.size(), rb.size()) << bid;
        for (std::size_t k = 0; k < ra.size(); ++k) {
            ASSERT_EQ(ra[k].id, rb[k].id) << bid << ":" << k;
            ASSERT_EQ(ra[k].point, rb[k].point) << bid << ":" << k;
        }
    }
}

template <std::size_t D>
Rect<D> unit_domain() {
    Rect<D> domain;
    for (std::size_t d = 0; d < D; ++d) {
        domain.lo[d] = 0.0;
        domain.hi[d] = 1.0;
    }
    return domain;
}

/// In-memory streamed load vs in-memory bulk_load, ragged chunking.
template <std::size_t D>
void run_memory_case(std::size_t n, std::uint64_t seed) {
    const auto pts = random_points<D>(n, seed);
    typename GridFile<D>::Config cfg;
    cfg.bucket_capacity = 32;

    GridFile<D> golden(unit_domain<D>(), cfg);
    golden.bulk_load(pts);

    GridFile<D> streamed(unit_domain<D>(), cfg);
    RaggedSource<D> source(pts);
    const std::uint64_t loaded = streamed.bulk_load_stream(source);
    EXPECT_EQ(loaded, pts.size());
    expect_identical(golden, streamed);
}

TEST(BulkLoadStream, MemoryBackendIdentical2d) { run_memory_case<2>(6000, 51); }
TEST(BulkLoadStream, MemoryBackendIdentical3d) { run_memory_case<3>(6000, 52); }

/// Paged streamed load (batch sessions active) vs in-memory bulk_load.
template <std::size_t D>
void run_paged_case(std::size_t n, std::uint64_t seed,
                    std::size_t pool_pages) {
    util::TempDir dir("pgf-blstream");
    const auto pts = random_points<D>(n, seed);

    typename PagedGridFile<D>::Config pcfg;
    pcfg.page_size = PagedBucketStore<D>::page_size_for(32);
    pcfg.pool_pages = pool_pages;
    PagedGridFile<D> pf(dir.file("paged.db").string(), unit_domain<D>(),
                        pcfg);

    typename GridFile<D>::Config mcfg;
    mcfg.bucket_capacity = pf.capacity();
    GridFile<D> golden(unit_domain<D>(), mcfg);
    golden.bulk_load(pts);

    RaggedSource<D> source(pts);
    const std::uint64_t loaded = pf.bulk_load_stream(source);
    EXPECT_EQ(loaded, pts.size());
    expect_identical(golden, pf);
}

TEST(BulkLoadStream, PagedBackendIdentical2d) {
    run_paged_case<2>(6000, 53, 64);
}

TEST(BulkLoadStream, PagedBackendIdentical3d) {
    run_paged_case<3>(6000, 54, 64);
}

TEST(BulkLoadStream, PagedTinyPoolThrash) {
    // A 4-page pool evicts the batch session's neighbors constantly; the
    // deferred encode must survive arbitrary eviction of the active page.
    run_paged_case<2>(4000, 55, 4);
}

TEST(BulkLoadStream, EmptySourceLoadsNothing) {
    std::vector<Point<2>> none;
    VectorPointSource<2> source(none);
    typename GridFile<2>::Config cfg;
    cfg.bucket_capacity = 8;
    GridFile<2> gf(unit_domain<2>(), cfg);
    EXPECT_EQ(gf.bulk_load_stream(source), 0u);
    EXPECT_EQ(gf.record_count(), 0u);
    EXPECT_EQ(gf.bucket_count(), 1u);
}

TEST(BulkLoadStream, SingleBlockSourceMatchesBulkLoad) {
    const auto pts = random_points<2>(200, 56);  // fits one read block
    typename GridFile<2>::Config cfg;
    cfg.bucket_capacity = 16;
    GridFile<2> golden(unit_domain<2>(), cfg);
    golden.bulk_load(pts);
    GridFile<2> streamed(unit_domain<2>(), cfg);
    VectorPointSource<2> source(pts);
    EXPECT_EQ(streamed.bulk_load_stream(source), pts.size());
    expect_identical(golden, streamed);
}

TEST(BulkLoadStream, IdBaseOffsetsAssignedIds) {
    const auto pts = random_points<2>(500, 57);
    typename GridFile<2>::Config cfg;
    cfg.bucket_capacity = 16;
    GridFile<2> golden(unit_domain<2>(), cfg);
    golden.bulk_load(pts, 1000);
    GridFile<2> streamed(unit_domain<2>(), cfg);
    RaggedSource<2> source(pts);
    EXPECT_EQ(streamed.bulk_load_stream(source, 1000), pts.size());
    expect_identical(golden, streamed);
}

/// Queries against a stream-built paged file read through the synced
/// pages, not stale ones (regression guard for the deferred encode).
TEST(BulkLoadStream, PagedQueriesSeeAllRecordsAfterStreamBuild) {
    util::TempDir dir("pgf-blstream-q");
    const auto pts = random_points<2>(3000, 58);
    typename PagedGridFile<2>::Config pcfg;
    pcfg.page_size = PagedBucketStore<2>::page_size_for(32);
    pcfg.pool_pages = 8;
    PagedGridFile<2> pf(dir.file("q.db").string(), unit_domain<2>(), pcfg);
    VectorPointSource<2> source(pts);
    pf.bulk_load_stream(source);
    const Rect<2> everything = unit_domain<2>();
    EXPECT_EQ(pf.query_records(everything).size(), pts.size());
}

}  // namespace
}  // namespace pgf
