#include "pgf/gridfile/structure.hpp"

#include <gtest/gtest.h>

#include "pgf/util/check.hpp"

namespace pgf {
namespace {

TEST(BucketInfo, CellCountMergedVolume) {
    BucketInfo b;
    b.cell_lo = {0, 2};
    b.cell_hi = {2, 3};
    b.region_lo = {0.0, 1.0};
    b.region_hi = {2.0, 4.0};
    EXPECT_EQ(b.cell_count(), 2u);
    EXPECT_TRUE(b.merged());
    EXPECT_DOUBLE_EQ(b.volume(), 6.0);
}

TEST(BucketInfo, SingleCellNotMerged) {
    BucketInfo b;
    b.cell_lo = {1};
    b.cell_hi = {2};
    EXPECT_FALSE(b.merged());
}

TEST(CartesianStructure, EveryCellItsOwnBucket) {
    auto gs = make_cartesian_structure({4, 3}, {0.0, 0.0}, {8.0, 6.0});
    EXPECT_EQ(gs.bucket_count(), 12u);
    EXPECT_EQ(gs.cell_count(), 12u);
    EXPECT_EQ(gs.merged_bucket_count(), 0u);
    for (const auto& b : gs.buckets) {
        EXPECT_EQ(b.cell_count(), 1u);
        EXPECT_DOUBLE_EQ(b.volume(), 2.0 * 2.0);  // 8/4 x 6/3
    }
}

TEST(CartesianStructure, RowMajorBucketOrder) {
    auto gs = make_cartesian_structure({2, 3}, {0.0, 0.0}, {2.0, 3.0});
    // Bucket index = i * 3 + j, regions are unit cells.
    EXPECT_DOUBLE_EQ(gs.buckets[0].region_lo[0], 0.0);
    EXPECT_DOUBLE_EQ(gs.buckets[0].region_lo[1], 0.0);
    EXPECT_DOUBLE_EQ(gs.buckets[1].region_lo[1], 1.0);  // (0,1)
    EXPECT_DOUBLE_EQ(gs.buckets[3].region_lo[0], 1.0);  // (1,0)
    EXPECT_DOUBLE_EQ(gs.buckets[3].region_lo[1], 0.0);
}

TEST(CartesianStructure, RecordsPerCell) {
    auto gs = make_cartesian_structure({2, 2}, {0.0, 0.0}, {1.0, 1.0}, 7);
    for (const auto& b : gs.buckets) EXPECT_EQ(b.record_count, 7u);
}

TEST(CartesianStructure, RejectsDimensionMismatch) {
    EXPECT_THROW(make_cartesian_structure({2, 2}, {0.0}, {1.0, 1.0}),
                 CheckError);
}

TEST(GridStructureValidate, DetectsUncoveredCells) {
    auto gs = make_cartesian_structure({2, 2}, {0.0, 0.0}, {1.0, 1.0});
    gs.buckets.pop_back();
    EXPECT_THROW(gs.validate(), CheckError);
}

TEST(GridStructureValidate, DetectsDoubleCoverage) {
    auto gs = make_cartesian_structure({2, 2}, {0.0, 0.0}, {1.0, 1.0});
    gs.buckets.push_back(gs.buckets.back());
    EXPECT_THROW(gs.validate(), CheckError);
}

TEST(GridStructureValidate, DetectsOutOfGridBoxes) {
    auto gs = make_cartesian_structure({2, 2}, {0.0, 0.0}, {1.0, 1.0});
    gs.buckets[0].cell_hi[0] = 5;
    EXPECT_THROW(gs.validate(), CheckError);
}

TEST(GridStructureValidate, DetectsEmptyRegion) {
    auto gs = make_cartesian_structure({2, 2}, {0.0, 0.0}, {1.0, 1.0});
    gs.buckets[0].region_hi[0] = gs.buckets[0].region_lo[0];
    EXPECT_THROW(gs.validate(), CheckError);
}

TEST(GridStructure, DomainExtent) {
    auto gs = make_cartesian_structure({3}, {-2.0}, {4.0});
    EXPECT_DOUBLE_EQ(gs.domain_extent(0), 6.0);
    EXPECT_EQ(gs.dims(), 1u);
}

TEST(CartesianStructure, ThreeDimensional) {
    auto gs = make_cartesian_structure({2, 3, 4}, {0.0, 0.0, 0.0},
                                       {2.0, 3.0, 4.0});
    EXPECT_EQ(gs.bucket_count(), 24u);
    EXPECT_NO_THROW(gs.validate());
    // Last bucket is cell (1, 2, 3).
    const auto& last = gs.buckets.back();
    EXPECT_EQ(last.cell_lo, (std::vector<std::uint32_t>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(last.region_hi[2], 4.0);
}

}  // namespace
}  // namespace pgf
