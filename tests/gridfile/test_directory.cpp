#include "pgf/gridfile/directory.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "pgf/util/check.hpp"

namespace pgf {
namespace {

TEST(CellBox, CountAndExtent) {
    CellBox<3> box{{1, 0, 2}, {4, 2, 3}};
    EXPECT_EQ(box.cell_count(), 3u * 2 * 1);
    EXPECT_EQ(box.extent(0), 3u);
    EXPECT_EQ(box.extent(1), 2u);
    EXPECT_EQ(box.extent(2), 1u);
}

TEST(CellBox, Contains) {
    CellBox<2> box{{1, 1}, {3, 3}};
    EXPECT_TRUE(box.contains({1, 1}));
    EXPECT_TRUE(box.contains({2, 2}));
    EXPECT_FALSE(box.contains({3, 2}));  // hi is exclusive
    EXPECT_FALSE(box.contains({0, 1}));
}

TEST(ForEachCell, RowMajorOrder) {
    CellBox<2> box{{0, 0}, {2, 3}};
    std::vector<std::array<std::uint32_t, 2>> visited;
    for_each_cell(box, [&](const std::array<std::uint32_t, 2>& c) {
        visited.push_back(c);
    });
    std::vector<std::array<std::uint32_t, 2>> expected{
        {0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}};
    EXPECT_EQ(visited, expected);
}

TEST(ForEachCell, EmptyBoxVisitsNothing) {
    CellBox<2> box{{1, 1}, {1, 3}};
    int visits = 0;
    for_each_cell(box, [&](const auto&) { ++visits; });
    EXPECT_EQ(visits, 0);
}

TEST(ForEachCell, SingleCell) {
    CellBox<4> box{{2, 3, 4, 5}, {3, 4, 5, 6}};
    int visits = 0;
    for_each_cell(box, [&](const std::array<std::uint32_t, 4>& c) {
        EXPECT_EQ(c, (std::array<std::uint32_t, 4>{2, 3, 4, 5}));
        ++visits;
    });
    EXPECT_EQ(visits, 1);
}

TEST(GridDirectory, StartsAsSingleCell) {
    GridDirectory<2> dir(7);
    EXPECT_EQ(dir.cell_count(), 1u);
    EXPECT_EQ(dir.shape(), (std::array<std::uint32_t, 2>{1, 1}));
    EXPECT_EQ(dir.at({0, 0}), 7u);
}

TEST(GridDirectory, SetAndGet) {
    GridDirectory<2> dir(0);
    dir.expand(0, 0);
    dir.expand(1, 0);
    dir.set({1, 0}, 42);
    EXPECT_EQ(dir.at({1, 0}), 42u);
    EXPECT_EQ(dir.at({0, 0}), 0u);
}

TEST(GridDirectory, ExpandDuplicatesSlice) {
    GridDirectory<2> dir(0);
    dir.expand(0, 0);       // shape 2x1
    dir.set({0, 0}, 10);
    dir.set({1, 0}, 20);
    dir.expand(1, 0);       // shape 2x2: both columns copy the old one
    EXPECT_EQ(dir.at({0, 0}), 10u);
    EXPECT_EQ(dir.at({0, 1}), 10u);
    EXPECT_EQ(dir.at({1, 0}), 20u);
    EXPECT_EQ(dir.at({1, 1}), 20u);
}

TEST(GridDirectory, ExpandMiddleIntervalShiftsUpper) {
    GridDirectory<1> dir(0);
    dir.expand(0, 0);  // [A, A] -> set distinct
    dir.set({0}, 1);
    dir.set({1}, 2);
    dir.expand(0, 0);  // duplicate interval 0: [1, 1, 2]
    EXPECT_EQ(dir.shape()[0], 3u);
    EXPECT_EQ(dir.at({0}), 1u);
    EXPECT_EQ(dir.at({1}), 1u);
    EXPECT_EQ(dir.at({2}), 2u);
    dir.expand(0, 2);  // duplicate last: [1, 1, 2, 2]
    EXPECT_EQ(dir.at({3}), 2u);
}

TEST(GridDirectory, ExpandThreeDimensional) {
    GridDirectory<3> dir(5);
    dir.expand(1, 0);
    dir.expand(2, 0);
    EXPECT_EQ(dir.shape(), (std::array<std::uint32_t, 3>{1, 2, 2}));
    EXPECT_EQ(dir.cell_count(), 4u);
    for (std::uint32_t y = 0; y < 2; ++y) {
        for (std::uint32_t z = 0; z < 2; ++z) {
            EXPECT_EQ(dir.at({0, y, z}), 5u);
        }
    }
}

TEST(GridDirectory, OutOfRangeAccessThrows) {
    GridDirectory<2> dir(0);
    EXPECT_THROW(dir.at({1, 0}), CheckError);
    EXPECT_THROW(dir.expand(2, 0), CheckError);
    EXPECT_THROW(dir.expand(0, 1), CheckError);
}

TEST(GridDirectory, FlattenIsRowMajor) {
    GridDirectory<2> dir(0);
    dir.expand(0, 0);
    dir.expand(1, 0);  // 2x2
    EXPECT_EQ(dir.flatten({0, 0}), 0u);
    EXPECT_EQ(dir.flatten({0, 1}), 1u);
    EXPECT_EQ(dir.flatten({1, 0}), 2u);
    EXPECT_EQ(dir.flatten({1, 1}), 3u);
}

}  // namespace
}  // namespace pgf
