#include "pgf/gridfile/directory.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "pgf/util/check.hpp"
#include "pgf/util/rng.hpp"

namespace pgf {
namespace {

TEST(CellBox, CountAndExtent) {
    CellBox<3> box{{1, 0, 2}, {4, 2, 3}};
    EXPECT_EQ(box.cell_count(), 3u * 2 * 1);
    EXPECT_EQ(box.extent(0), 3u);
    EXPECT_EQ(box.extent(1), 2u);
    EXPECT_EQ(box.extent(2), 1u);
}

TEST(CellBox, Contains) {
    CellBox<2> box{{1, 1}, {3, 3}};
    EXPECT_TRUE(box.contains({1, 1}));
    EXPECT_TRUE(box.contains({2, 2}));
    EXPECT_FALSE(box.contains({3, 2}));  // hi is exclusive
    EXPECT_FALSE(box.contains({0, 1}));
}

TEST(ForEachCell, RowMajorOrder) {
    CellBox<2> box{{0, 0}, {2, 3}};
    std::vector<std::array<std::uint32_t, 2>> visited;
    for_each_cell(box, [&](const std::array<std::uint32_t, 2>& c) {
        visited.push_back(c);
    });
    std::vector<std::array<std::uint32_t, 2>> expected{
        {0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}};
    EXPECT_EQ(visited, expected);
}

TEST(ForEachCell, EmptyBoxVisitsNothing) {
    CellBox<2> box{{1, 1}, {1, 3}};
    int visits = 0;
    for_each_cell(box, [&](const auto&) { ++visits; });
    EXPECT_EQ(visits, 0);
}

TEST(ForEachCell, SingleCell) {
    CellBox<4> box{{2, 3, 4, 5}, {3, 4, 5, 6}};
    int visits = 0;
    for_each_cell(box, [&](const std::array<std::uint32_t, 4>& c) {
        EXPECT_EQ(c, (std::array<std::uint32_t, 4>{2, 3, 4, 5}));
        ++visits;
    });
    EXPECT_EQ(visits, 1);
}

TEST(GridDirectory, StartsAsSingleCell) {
    GridDirectory<2> dir(7);
    EXPECT_EQ(dir.cell_count(), 1u);
    EXPECT_EQ(dir.shape(), (std::array<std::uint32_t, 2>{1, 1}));
    EXPECT_EQ(dir.at({0, 0}), 7u);
}

TEST(GridDirectory, SetAndGet) {
    GridDirectory<2> dir(0);
    dir.expand(0, 0);
    dir.expand(1, 0);
    dir.set({1, 0}, 42);
    EXPECT_EQ(dir.at({1, 0}), 42u);
    EXPECT_EQ(dir.at({0, 0}), 0u);
}

TEST(GridDirectory, ExpandDuplicatesSlice) {
    GridDirectory<2> dir(0);
    dir.expand(0, 0);       // shape 2x1
    dir.set({0, 0}, 10);
    dir.set({1, 0}, 20);
    dir.expand(1, 0);       // shape 2x2: both columns copy the old one
    EXPECT_EQ(dir.at({0, 0}), 10u);
    EXPECT_EQ(dir.at({0, 1}), 10u);
    EXPECT_EQ(dir.at({1, 0}), 20u);
    EXPECT_EQ(dir.at({1, 1}), 20u);
}

TEST(GridDirectory, ExpandMiddleIntervalShiftsUpper) {
    GridDirectory<1> dir(0);
    dir.expand(0, 0);  // [A, A] -> set distinct
    dir.set({0}, 1);
    dir.set({1}, 2);
    dir.expand(0, 0);  // duplicate interval 0: [1, 1, 2]
    EXPECT_EQ(dir.shape()[0], 3u);
    EXPECT_EQ(dir.at({0}), 1u);
    EXPECT_EQ(dir.at({1}), 1u);
    EXPECT_EQ(dir.at({2}), 2u);
    dir.expand(0, 2);  // duplicate last: [1, 1, 2, 2]
    EXPECT_EQ(dir.at({3}), 2u);
}

TEST(GridDirectory, ExpandThreeDimensional) {
    GridDirectory<3> dir(5);
    dir.expand(1, 0);
    dir.expand(2, 0);
    EXPECT_EQ(dir.shape(), (std::array<std::uint32_t, 3>{1, 2, 2}));
    EXPECT_EQ(dir.cell_count(), 4u);
    for (std::uint32_t y = 0; y < 2; ++y) {
        for (std::uint32_t z = 0; z < 2; ++z) {
            EXPECT_EQ(dir.at({0, y, z}), 5u);
        }
    }
}

TEST(GridDirectory, OutOfRangeAccessThrows) {
    GridDirectory<2> dir(0);
#if PGF_DCHECK_ACTIVE
    // Cell bounds are PGF_DCHECK-validated: debug/sanitizer builds throw,
    // release builds make the caller responsible (flatten_unchecked
    // contract).
    EXPECT_THROW(dir.at({1, 0}), CheckError);
#endif
    EXPECT_THROW(dir.expand(2, 0), CheckError);
    EXPECT_THROW(dir.expand(0, 1), CheckError);
}

// Reference model for expand(): a plain row-major array grown one cell at
// a time with explicit index arithmetic. expand() itself is implemented
// with contiguous run copies; this model re-derives the same semantics
// independently — new index j along `axis` reads old index j for
// j <= interval and j - 1 above it (interval and its copy both inherit the
// old interval's buckets).
template <std::size_t D>
class DirectoryModel {
public:
    explicit DirectoryModel(std::uint32_t fill) : cells_(1, fill) {
        shape_.fill(1);
    }

    void expand(std::size_t axis, std::uint32_t interval) {
        std::array<std::uint32_t, D> new_shape = shape_;
        ++new_shape[axis];
        std::vector<std::uint32_t> grown(cell_count(new_shape));
        std::array<std::uint32_t, D> cell{};
        for (std::uint64_t idx = 0; idx < grown.size(); ++idx) {
            std::array<std::uint32_t, D> src = cell;
            if (src[axis] > interval) --src[axis];
            grown[idx] = cells_[flatten(src, shape_)];
            // row-major increment, last axis fastest
            for (std::size_t i = D; i-- > 0;) {
                if (++cell[i] < new_shape[i]) break;
                cell[i] = 0;
            }
        }
        shape_ = new_shape;
        cells_ = std::move(grown);
    }

    void set(const std::array<std::uint32_t, D>& cell, std::uint32_t v) {
        cells_[flatten(cell, shape_)] = v;
    }

    std::uint32_t at(const std::array<std::uint32_t, D>& cell) const {
        return cells_[flatten(cell, shape_)];
    }

    const std::array<std::uint32_t, D>& shape() const { return shape_; }
    const std::vector<std::uint32_t>& cells() const { return cells_; }

private:
    static std::uint64_t cell_count(const std::array<std::uint32_t, D>& s) {
        std::uint64_t n = 1;
        for (std::uint32_t e : s) n *= e;
        return n;
    }

    static std::uint64_t flatten(const std::array<std::uint32_t, D>& cell,
                                 const std::array<std::uint32_t, D>& s) {
        std::uint64_t idx = 0;
        for (std::size_t i = 0; i < D; ++i) idx = idx * s[i] + cell[i];
        return idx;
    }

    std::array<std::uint32_t, D> shape_;
    std::vector<std::uint32_t> cells_;
};

template <std::size_t D>
void random_expand_equivalence(std::uint64_t seed) {
    Rng rng(seed);
    GridDirectory<D> dir(0);
    DirectoryModel<D> model(0u);
    for (int step = 0; step < 60; ++step) {
        // Mutate a few random cells so copied runs carry distinct values.
        for (int w = 0; w < 3; ++w) {
            std::array<std::uint32_t, D> cell;
            for (std::size_t i = 0; i < D; ++i) {
                cell[i] = rng.below(dir.shape()[i]);
            }
            const std::uint32_t v = rng.next_u32() % 1000;
            dir.set(cell, v);
            model.set(cell, v);
        }
        const auto axis = static_cast<std::size_t>(
            rng.below(static_cast<std::uint32_t>(D)));
        const std::uint32_t interval = rng.below(dir.shape()[axis]);
        dir.expand(axis, interval);
        model.expand(axis, interval);

        ASSERT_EQ(dir.shape(), model.shape());
        std::array<std::uint32_t, D> cell{};
        for (std::uint64_t idx = 0; idx < dir.cell_count(); ++idx) {
            ASSERT_EQ(dir.at(cell), model.at(cell))
                << "step " << step << " flat index " << idx;
            for (std::size_t i = D; i-- > 0;) {
                if (++cell[i] < dir.shape()[i]) break;
                cell[i] = 0;
            }
        }
        // Keep directory size bounded: stop growing large dimensions.
        if (dir.cell_count() > 200000) break;
    }
}

TEST(GridDirectory, RandomExpandMatchesPerCellModel1D) {
    random_expand_equivalence<1>(101);
    random_expand_equivalence<1>(102);
}

TEST(GridDirectory, RandomExpandMatchesPerCellModel2D) {
    random_expand_equivalence<2>(201);
    random_expand_equivalence<2>(202);
}

TEST(GridDirectory, RandomExpandMatchesPerCellModel3D) {
    random_expand_equivalence<3>(301);
    random_expand_equivalence<3>(302);
}

TEST(GridDirectory, RandomExpandMatchesPerCellModel4D) {
    random_expand_equivalence<4>(401);
    random_expand_equivalence<4>(402);
}

TEST(GridDirectory, FlattenIsRowMajor) {
    GridDirectory<2> dir(0);
    dir.expand(0, 0);
    dir.expand(1, 0);  // 2x2
    EXPECT_EQ(dir.flatten({0, 0}), 0u);
    EXPECT_EQ(dir.flatten({0, 1}), 1u);
    EXPECT_EQ(dir.flatten({1, 0}), 2u);
    EXPECT_EQ(dir.flatten({1, 1}), 3u);
}

}  // namespace
}  // namespace pgf
