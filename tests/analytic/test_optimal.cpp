#include "pgf/analytic/optimal.hpp"

#include <gtest/gtest.h>

#include "pgf/util/check.hpp"

namespace pgf {
namespace {

TEST(OptimalSquare, CeilingFormula) {
    EXPECT_EQ(optimal_square_response(4, 4), 4u);    // 16/4
    EXPECT_EQ(optimal_square_response(4, 5), 4u);    // ceil(16/5)
    EXPECT_EQ(optimal_square_response(4, 16), 1u);
    EXPECT_EQ(optimal_square_response(4, 17), 1u);
    EXPECT_EQ(optimal_square_response(1, 1), 1u);
    EXPECT_EQ(optimal_square_response(7, 3), 17u);   // ceil(49/3)
}

TEST(OptimalSquare, RealVariant) {
    EXPECT_DOUBLE_EQ(optimal_square_response_real(4, 5), 3.2);
    EXPECT_DOUBLE_EQ(optimal_square_response_real(10, 4), 25.0);
}

TEST(OptimalSquare, IdealScalingWhenDivisible) {
    // R_opt(2M) = R_opt(M)/2 when M | l^2 — the ideal-scaling reference in
    // the Theorem 2 discussion.
    EXPECT_DOUBLE_EQ(optimal_square_response_real(8, 8),
                     2.0 * optimal_square_response_real(8, 16));
}

TEST(OptimalSquare, NeverBelowRealAndWithinOne) {
    for (std::uint32_t l = 1; l <= 20; ++l) {
        for (std::uint32_t m = 1; m <= 40; ++m) {
            auto intval = optimal_square_response(l, m);
            double real = optimal_square_response_real(l, m);
            EXPECT_GE(static_cast<double>(intval), real);
            EXPECT_LT(static_cast<double>(intval), real + 1.0);
        }
    }
}

TEST(OptimalSquare, RejectsZeroArguments) {
    EXPECT_THROW(optimal_square_response(0, 4), CheckError);
    EXPECT_THROW(optimal_square_response(4, 0), CheckError);
    EXPECT_THROW(optimal_square_response_real(0, 1), CheckError);
}

}  // namespace
}  // namespace pgf
