#include "pgf/analytic/fx_theory.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "pgf/analytic/optimal.hpp"
#include "pgf/util/check.hpp"

namespace pgf {
namespace {

TEST(FxResponse, TinyHandComputedCases) {
    // 2x2 query at origin, 2 disks: (0^0)=0, (0^1)=1, (1^0)=1, (1^1)=0.
    EXPECT_EQ(fx_response_at(0, 0, 2, 2), 2u);
    // 2x2 at origin, 4 disks: values 0,1,1,0 -> disk 0 twice.
    EXPECT_EQ(fx_response_at(0, 0, 2, 4), 2u);
    // 2x2 anchored at (0,1), 4 disks: 1,2,3,0 -> perfectly spread.
    EXPECT_EQ(fx_response_at(0, 1, 2, 4), 1u);
}

TEST(FxResponse, PositionDependent) {
    // Unlike DM, FX response varies with the anchor (motivating the
    // expected-value measurement).
    EXPECT_NE(fx_response_at(0, 0, 2, 4), fx_response_at(0, 1, 2, 4));
}

TEST(FxMeasure, SummaryOrdering) {
    FxMeasurement m = fx_response_measure(4, 8, 32);
    EXPECT_LE(m.best, m.worst);
    EXPECT_GE(m.expected, static_cast<double>(m.best));
    EXPECT_LE(m.expected, static_cast<double>(m.worst));
}

// Theorem 2(i): for l = 2^m and M = 2^n with n <= m the FX response is
// exactly 4^m / 2^n at EVERY anchor.
class FxClauseOne
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(FxClauseOne, ExactEverywhere) {
    auto [m, n] = GetParam();
    const std::uint32_t l = 1u << m;
    const std::uint32_t disks = 1u << n;
    FxBounds b = fx_theorem2(m, n);
    ASSERT_TRUE(b.exact);
    const double expected = std::ldexp(1.0, static_cast<int>(2 * m - n));
    EXPECT_DOUBLE_EQ(b.lower, expected);
    FxMeasurement meas = fx_response_measure(l, disks, 2 * l);
    EXPECT_DOUBLE_EQ(meas.expected, expected);
    EXPECT_EQ(meas.worst, meas.best);  // anchor-independent in this regime
}

INSTANTIATE_TEST_SUITE_P(
    Regime, FxClauseOne,
    ::testing::Values(std::tuple<unsigned, unsigned>{1, 0},
                      std::tuple<unsigned, unsigned>{1, 1},
                      std::tuple<unsigned, unsigned>{2, 1},
                      std::tuple<unsigned, unsigned>{2, 2},
                      std::tuple<unsigned, unsigned>{3, 2},
                      std::tuple<unsigned, unsigned>{3, 3},
                      std::tuple<unsigned, unsigned>{4, 3}),
    [](const auto& param_info) {
        return "m" + std::to_string(std::get<0>(param_info.param)) + "n" +
               std::to_string(std::get<1>(param_info.param));
    });

// Theorem 2(ii): for n > m the response lies in [2^(2m-n), 2^m].
class FxClauseTwo
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(FxClauseTwo, BoundsHoldForEveryAnchor) {
    auto [m, n] = GetParam();
    const std::uint32_t l = 1u << m;
    const std::uint32_t disks = 1u << n;
    FxBounds b = fx_theorem2(m, n);
    ASSERT_FALSE(b.exact);
    EXPECT_DOUBLE_EQ(b.upper, std::ldexp(1.0, static_cast<int>(m)));
    FxMeasurement meas = fx_response_measure(l, disks, 4 * l);
    EXPECT_GE(static_cast<double>(meas.best), b.lower);
    EXPECT_LE(static_cast<double>(meas.worst), b.upper);
}

INSTANTIATE_TEST_SUITE_P(
    Regime, FxClauseTwo,
    ::testing::Values(std::tuple<unsigned, unsigned>{1, 2},
                      std::tuple<unsigned, unsigned>{1, 3},
                      std::tuple<unsigned, unsigned>{2, 3},
                      std::tuple<unsigned, unsigned>{2, 4},
                      std::tuple<unsigned, unsigned>{3, 4},
                      std::tuple<unsigned, unsigned>{3, 5},
                      std::tuple<unsigned, unsigned>{4, 5}),
    [](const auto& param_info) {
        return "m" + std::to_string(std::get<0>(param_info.param)) + "n" +
               std::to_string(std::get<1>(param_info.param));
    });

TEST(FxTheorem2, ClauseThreeScalingFloor) {
    // R_FX(2^(n+1)) >= (3/4) R_FX(2^n) for n > m: doubling the disks can
    // shave at most a quarter off — far from ideal halving.
    for (unsigned m = 1; m <= 3; ++m) {
        const std::uint32_t l = 1u << m;
        double prev = 0.0;
        for (unsigned n = m + 1; n <= m + 3; ++n) {
            FxMeasurement meas = fx_response_measure(l, 1u << n, 4 * l);
            if (prev > 0.0) {
                EXPECT_GE(meas.expected, 0.75 * prev - 1e-9)
                    << "m=" << m << " n=" << n;
            }
            prev = meas.expected;
        }
    }
}

TEST(FxTheorem2, SaturationNeverBelowDm) {
    // FX saturates at a lower response than DM for the uniform case the
    // paper plots (Fig. 4 left): at large M, FX's worst anchor stays <=
    // DM's constant l.
    for (unsigned m = 2; m <= 4; ++m) {
        const std::uint32_t l = 1u << m;
        FxMeasurement meas = fx_response_measure(l, 8 * l, 4 * l);
        EXPECT_LE(meas.worst, l);
    }
}

TEST(FxMeasure, RejectsGridSmallerThanQuery) {
    EXPECT_THROW(fx_response_measure(8, 4, 4), CheckError);
}

TEST(FxTheorem2, RejectsHugeExponents) {
    EXPECT_THROW(fx_theorem2(40, 2), CheckError);
}

}  // namespace
}  // namespace pgf
