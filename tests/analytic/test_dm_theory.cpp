#include "pgf/analytic/dm_theory.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "pgf/analytic/optimal.hpp"
#include "pgf/util/check.hpp"

namespace pgf {
namespace {

TEST(DmExact, TinyHandComputedCases) {
    // 2x2 query, 2 disks: cells (0,0),(1,1) -> disk 0; (0,1),(1,0) -> 1.
    EXPECT_EQ(dm_response_exact(2, 2), 2u);
    // 2x2 query, 4 disks: sums 0,1,1,2 -> disks 0,1,1,2 -> max 2.
    EXPECT_EQ(dm_response_exact(2, 4), 2u);
    // 3x3 query, 3 disks: each anti-diagonal class has 3 cells.
    EXPECT_EQ(dm_response_exact(3, 3), 3u);
    // Single-cell query: always 1.
    EXPECT_EQ(dm_response_exact(1, 7), 1u);
}

TEST(DmExact, PositionIndependence) {
    // Shifting the query window permutes the DM disks, leaving the response
    // unchanged — the property Theorem 1's closed form relies on.
    for (std::uint32_t l : {2u, 3u, 5u, 8u}) {
        for (std::uint32_t m : {2u, 3u, 4u, 7u}) {
            std::uint64_t base = dm_response_at(0, 0, l, m);
            for (std::uint32_t x0 : {1u, 3u, 10u}) {
                for (std::uint32_t y0 : {2u, 5u, 11u}) {
                    EXPECT_EQ(dm_response_at(x0, y0, l, m), base)
                        << "l=" << l << " M=" << m;
                }
            }
        }
    }
}

TEST(DmTheorem1, MoreDisksThanQuerySideSaturatesAtL) {
    // The headline scalability result: for M > l the response is stuck at
    // l no matter how many disks are added.
    for (std::uint32_t l : {2u, 4u, 6u, 10u}) {
        for (std::uint32_t m = l + 1; m <= l + 30; m += 7) {
            DmPrediction p = dm_theorem1(l, m);
            EXPECT_EQ(p.response, l);
            EXPECT_EQ(dm_response_exact(l, m), l);
        }
    }
}

TEST(DmTheorem1, DivisibleCaseIsStrictlyOptimal) {
    for (std::uint32_t k = 1; k <= 5; ++k) {
        for (std::uint32_t m = 2; m <= 8; ++m) {
            std::uint32_t l = k * m;  // beta = 0
            DmPrediction p = dm_theorem1(l, m);
            EXPECT_TRUE(p.strictly_optimal);
            EXPECT_EQ(p.response, optimal_square_response(l, m));
            EXPECT_EQ(dm_response_exact(l, m), p.response);
        }
    }
}

// The closed form must agree with brute-force enumeration everywhere.
class DmClosedForm
    : public ::testing::TestWithParam<std::uint32_t> {};  // param = M

TEST_P(DmClosedForm, MatchesBruteForceForAllL) {
    const std::uint32_t m = GetParam();
    for (std::uint32_t l = 1; l <= 48; ++l) {
        DmPrediction p = dm_theorem1(l, m);
        std::uint64_t exact = dm_response_exact(l, m);
        EXPECT_EQ(p.response, exact) << "l=" << l << " M=" << m;
        EXPECT_EQ(p.strictly_optimal,
                  exact == optimal_square_response(l, m))
            << "l=" << l << " M=" << m;
    }
}

INSTANTIATE_TEST_SUITE_P(DiskSweep, DmClosedForm,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           10u, 12u, 16u, 24u, 32u),
                         [](const auto& param_info) {
                             return "M" + std::to_string(param_info.param);
                         });

TEST(DmTheorem1, TighterThanLiEtAlBound) {
    // Theorem 1(ii) claims a bound tighter than R_opt + M - 2 (Li et al.)
    // for every M >= 3 in two dimensions.
    for (std::uint32_t m = 3; m <= 32; ++m) {
        for (std::uint32_t l = m; l <= 3 * m; ++l) {
            DmPrediction p = dm_theorem1(l, m);
            std::uint64_t li_bound = optimal_square_response(l, m) + m - 2;
            EXPECT_LE(p.response, li_bound) << "l=" << l << " M=" << m;
        }
    }
}

TEST(DmTheory, RejectsZeroArguments) {
    EXPECT_THROW(dm_theorem1(0, 4), CheckError);
    EXPECT_THROW(dm_theorem1(4, 0), CheckError);
    EXPECT_THROW(dm_response_exact(0, 4), CheckError);
}

}  // namespace
}  // namespace pgf
