// Partial-match optimality results the paper builds on (Sec. 2):
// Du & Sobolewski — DM is strictly optimal for every partial match query
// with exactly one unspecified attribute; Kim & Pramanik — with power-of-2
// fields and disks, FX's optimal query set contains DM's.
#include <gtest/gtest.h>

#include <set>

#include "pgf/analytic/dm_theory.hpp"
#include "pgf/util/check.hpp"

namespace pgf {
namespace {

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
    return (a + b - 1) / b;
}

TEST(DmPartialMatch, OneUnspecifiedAttributeIsStrictlyOptimal) {
    // Du & Sobolewski's Theorem: the swept cells take consecutive residues,
    // so every disk serves at most ceil(extent / M).
    for (std::uint32_t extent : {1u, 2u, 5u, 7u, 16u, 33u, 100u}) {
        for (std::uint32_t m : {1u, 2u, 3u, 4u, 7u, 8u, 16u, 33u}) {
            EXPECT_EQ(dm_partial_match_exact({extent}, m),
                      ceil_div(extent, m))
                << "extent=" << extent << " M=" << m;
        }
    }
}

TEST(DmPartialMatch, TwoUnspecifiedAttributesCanBeSuboptimal) {
    // With two free attributes DM degenerates to the square-range behavior
    // of Theorem 1: e.g. a full 6x6 sweep on 4 disks.
    std::uint64_t response = dm_partial_match_exact({6, 6}, 4);
    EXPECT_GT(response, ceil_div(36, 4));
    // And matches the 2-d range-query enumerator on the same box.
    EXPECT_EQ(response, dm_response_exact(6, 4));
}

TEST(DmPartialMatch, MatchesSquareEnumeratorForAllSquares) {
    for (std::uint32_t l = 1; l <= 12; ++l) {
        for (std::uint32_t m = 1; m <= 10; ++m) {
            EXPECT_EQ(dm_partial_match_exact({l, l}, m),
                      dm_response_exact(l, m));
        }
    }
}

TEST(DmPartialMatch, ThreeDimensionalSweep) {
    // 2x3x4 box on 3 disks: residue counts of i+j+k.
    std::uint64_t r = dm_partial_match_exact({2, 3, 4}, 3);
    // Hand count: sums 0..6 with multiplicities 1,3,5,6,5,3,1 -> residues
    // r0: s=0,3,6 -> 1+6+1=8; r1: s=1,4 -> 3+5=8; r2: s=2,5 -> 5+3=8.
    EXPECT_EQ(r, 8u);
}

TEST(DmPartialMatch, RejectsDegenerateInput) {
    EXPECT_THROW(dm_partial_match_exact({}, 4), CheckError);
    EXPECT_THROW(dm_partial_match_exact({0u}, 4), CheckError);
    EXPECT_THROW(dm_partial_match_exact({4u}, 0), CheckError);
}

TEST(FxPartialMatch, OneFreePowerOfTwoAxisIsOptimal) {
    // A full power-of-two axis sweep XORed with any constant permutes the
    // values, so FX also spreads them perfectly over 2^n disks.
    for (std::uint32_t extent : {2u, 4u, 8u, 16u}) {
        for (std::uint32_t m : {2u, 4u, 8u}) {
            if (m > extent) continue;
            for (std::uint32_t pinned : {0u, 3u, 9u}) {
                EXPECT_EQ(fx_partial_match_at(pinned, {0}, {extent}, m),
                          extent / m)
                    << "extent=" << extent << " M=" << m;
            }
        }
    }
}

TEST(FxPartialMatch, OptimalSetContainsDmOptimalSet) {
    // Kim & Pramanik: with power-of-2 extents and disks, whenever DM is
    // optimal for a partial match query, FX is too. Verify over anchors.
    for (std::uint32_t e1 : {2u, 4u, 8u}) {
        for (std::uint32_t e2 : {2u, 4u, 8u}) {
            for (std::uint32_t m : {2u, 4u, 8u}) {
                std::uint64_t opt = ceil_div(
                    static_cast<std::uint64_t>(e1) * e2, m);
                if (dm_partial_match_exact({e1, e2}, m) != opt) continue;
                for (std::uint32_t a1 : {0u, 4u, 5u}) {
                    for (std::uint32_t a2 : {0u, 2u, 7u}) {
                        EXPECT_EQ(
                            fx_partial_match_at(0, {a1, a2}, {e1, e2}, m),
                            opt)
                            << e1 << "x" << e2 << " M=" << m;
                    }
                }
            }
        }
    }
}

TEST(FxPartialMatch, ResponseDependsOnAnchorPosition) {
    // Unlike DM (position independent), FX's response to a non-power-of-two
    // sweep varies with where the sweep is anchored — the asymmetry the
    // paper's Sec. 2 discussion trades on. Scan a block of anchors and
    // require at least two distinct responses.
    std::set<std::uint64_t> responses;
    for (std::uint32_t a1 = 0; a1 < 8; ++a1) {
        for (std::uint32_t a2 = 0; a2 < 8; ++a2) {
            responses.insert(fx_partial_match_at(0, {a1, a2}, {6, 6}, 4));
        }
    }
    EXPECT_GE(responses.size(), 2u);
}

TEST(FxPartialMatch, RejectsMalformedInput) {
    EXPECT_THROW(fx_partial_match_at(0, {0}, {2, 2}, 4), CheckError);
    EXPECT_THROW(fx_partial_match_at(0, {}, {}, 4), CheckError);
    EXPECT_THROW(fx_partial_match_at(0, {0}, {2}, 0), CheckError);
}

}  // namespace
}  // namespace pgf
