#include "pgf/workload/query_gen.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "pgf/util/check.hpp"
#include "pgf/util/stats.hpp"

namespace pgf {
namespace {

TEST(QuerySideFraction, MatchesClosedForm) {
    EXPECT_DOUBLE_EQ(query_side_fraction(0.25, 2), 0.5);
    EXPECT_DOUBLE_EQ(query_side_fraction(0.01, 2), 0.1);
    EXPECT_NEAR(query_side_fraction(0.05, 3), std::cbrt(0.05), 1e-12);
    EXPECT_DOUBLE_EQ(query_side_fraction(0.5, 1), 0.5);
}

TEST(QuerySideFraction, RejectsBadRatio) {
    EXPECT_THROW(query_side_fraction(0.0, 2), CheckError);
    EXPECT_THROW(query_side_fraction(1.0, 2), CheckError);
    EXPECT_THROW(query_side_fraction(-0.1, 2), CheckError);
    EXPECT_THROW(query_side_fraction(0.5, 0), CheckError);
}

TEST(SquareQueries, CountAndVolumeRatio) {
    Rect<2> domain{{{0.0, 0.0}}, {{2000.0, 2000.0}}};
    Rng rng(3);
    auto queries = square_queries(domain, 0.05, 500, rng);
    ASSERT_EQ(queries.size(), 500u);
    const double expected_volume = 0.05 * domain.volume();
    for (const auto& q : queries) {
        EXPECT_NEAR(q.volume(), expected_volume, expected_volume * 1e-9);
    }
}

TEST(SquareQueries, SidesScaleWithDomainAnisotropy) {
    Rect<2> domain{{{0.0, 0.0}}, {{100.0, 400.0}}};
    Rng rng(5);
    auto queries = square_queries(domain, 0.04, 10, rng);
    // l_k = sqrt(0.04) * L_k = 0.2 * L_k.
    for (const auto& q : queries) {
        EXPECT_NEAR(q.extent(0), 20.0, 1e-9);
        EXPECT_NEAR(q.extent(1), 80.0, 1e-9);
    }
}

TEST(SquareQueries, CentersUniformOverDomain) {
    Rect<2> domain{{{0.0, 0.0}}, {{10.0, 10.0}}};
    Rng rng(7);
    auto queries = square_queries(domain, 0.01, 20000, rng);
    OnlineStats cx, cy;
    for (const auto& q : queries) {
        cx.add(0.5 * (q.lo[0] + q.hi[0]));
        cy.add(0.5 * (q.lo[1] + q.hi[1]));
    }
    EXPECT_NEAR(cx.mean(), 5.0, 0.1);
    EXPECT_NEAR(cy.mean(), 5.0, 0.1);
    // Centers can put query edges outside the domain (the paper's model).
    bool overhang = false;
    for (const auto& q : queries) {
        if (q.lo[0] < 0.0 || q.hi[0] > 10.0) overhang = true;
    }
    EXPECT_TRUE(overhang);
}

TEST(SquareQueries, DeterministicPerSeed) {
    Rect<3> domain{{{0.0, 0.0, 0.0}}, {{1.0, 1.0, 1.0}}};
    Rng r1(11), r2(11);
    auto a = square_queries(domain, 0.05, 50, r1);
    auto b = square_queries(domain, 0.05, 50, r2);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(AnimationQueries, SlabsPerTimeStep) {
    Rect<4> domain{{{0.0, 0.0, 0.0, 0.0}}, {{4.0, 1.0, 1.0, 1.0}}};
    auto queries = animation_queries(domain, 4, 0.5);
    // ceil(1/0.5) = 2 slab queries per step, 4 steps (paper: ~10 x 59).
    ASSERT_EQ(queries.size(), 8u);
    for (const auto& q : queries) {
        // Time slabs are unit width and aligned.
        EXPECT_DOUBLE_EQ(q.lo[0], std::floor(q.lo[0]));
        EXPECT_DOUBLE_EQ(q.hi[0] - q.lo[0], 1.0);
        // Slab spans half of axis 1 and ALL of axes 2 and 3 (r L_x x L_y x
        // L_z x 1, the paper's query size).
        EXPECT_NEAR(q.hi[1] - q.lo[1], 0.5, 1e-12);
        EXPECT_DOUBLE_EQ(q.lo[2], 0.0);
        EXPECT_DOUBLE_EQ(q.hi[2], 1.0);
        EXPECT_DOUBLE_EQ(q.lo[3], 0.0);
        EXPECT_DOUBLE_EQ(q.hi[3], 1.0);
    }
}

TEST(AnimationQueries, SlabsCoverTheVolume) {
    Rect<3> domain{{{0.0, 0.0, 0.0}}, {{2.0, 1.0, 1.0}}};
    auto queries = animation_queries(domain, 1, 0.3);  // 4 slabs
    ASSERT_EQ(queries.size(), 4u);
    double covered = 0.0;
    for (const auto& q : queries) covered += q.hi[1] - q.lo[1];
    EXPECT_NEAR(covered, 1.0, 1e-9);  // slabs partition axis 1
}

TEST(AnimationQueries, FractionalTilingClampsAtDomainEdge) {
    Rect<2> domain{{{0.0, 0.0}}, {{1.0, 1.0}}};
    auto queries = animation_queries(domain, 1, 0.4);  // ceil(1/0.4) = 3 slabs
    ASSERT_EQ(queries.size(), 3u);
    EXPECT_DOUBLE_EQ(queries.back().hi[1], 1.0);  // clamped
    EXPECT_NEAR(queries.back().hi[1] - queries.back().lo[1], 0.2, 1e-9);
}

TEST(TraceQueries, OneBoxPerTimeStepInsideDomain) {
    Rect<3> domain{{{0.0, 0.0, 0.0}}, {{20.0, 1.0, 1.0}}};
    Rng rng(3);
    auto queries = trace_queries(domain, 20, 0.05, rng);
    ASSERT_EQ(queries.size(), 20u);
    for (std::size_t t = 0; t < queries.size(); ++t) {
        const auto& q = queries[t];
        EXPECT_DOUBLE_EQ(q.lo[0], static_cast<double>(t));
        EXPECT_DOUBLE_EQ(q.hi[0], static_cast<double>(t) + 1.0);
        for (std::size_t i = 1; i < 3; ++i) {
            EXPECT_NEAR(q.hi[i] - q.lo[i], 0.05, 1e-12);
            // Box centers stay inside the domain (reflection at walls).
            double c = 0.5 * (q.lo[i] + q.hi[i]);
            EXPECT_GE(c, 0.0);
            EXPECT_LT(c, 1.0);
        }
    }
}

TEST(TraceQueries, ConsecutiveBoxesAreSpatiallyCorrelated) {
    Rect<3> domain{{{0.0, 0.0, 0.0}}, {{50.0, 1.0, 1.0}}};
    Rng rng(7);
    auto queries = trace_queries(domain, 50, 0.04, rng);
    for (std::size_t t = 1; t < queries.size(); ++t) {
        for (std::size_t i = 1; i < 3; ++i) {
            double prev = 0.5 * (queries[t - 1].lo[i] + queries[t - 1].hi[i]);
            double cur = 0.5 * (queries[t].lo[i] + queries[t].hi[i]);
            // Steps are ~N(0, half a box): 0.3 of the domain is > 10 sigma.
            EXPECT_LT(std::abs(cur - prev), 0.3) << "step " << t;
        }
    }
}

TEST(TraceQueries, DeterministicPerSeed) {
    Rect<2> domain{{{0.0, 0.0}}, {{8.0, 1.0}}};
    Rng a(11), b(11);
    auto qa = trace_queries(domain, 8, 0.1, a);
    auto qb = trace_queries(domain, 8, 0.1, b);
    ASSERT_EQ(qa.size(), qb.size());
    for (std::size_t i = 0; i < qa.size(); ++i) EXPECT_EQ(qa[i], qb[i]);
}

TEST(TraceQueries, RejectsBadBoxSide) {
    Rect<2> domain{{{0.0, 0.0}}, {{1.0, 1.0}}};
    Rng rng(1);
    EXPECT_THROW(trace_queries(domain, 4, 0.0, rng), CheckError);
    EXPECT_THROW(trace_queries(domain, 4, 1.0, rng), CheckError);
}

}  // namespace
}  // namespace pgf
