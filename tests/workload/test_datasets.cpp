#include "pgf/workload/datasets.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "pgf/util/stats.hpp"

namespace pgf {
namespace {

TEST(Uniform2d, CountDomainAndSpread) {
    Rng rng(1);
    auto ds = make_uniform2d(rng, 5000);
    EXPECT_EQ(ds.name, "uniform.2d");
    EXPECT_EQ(ds.points.size(), 5000u);
    OnlineStats x, y;
    for (const auto& p : ds.points) {
        ASSERT_TRUE(ds.domain.contains(p));
        x.add(p[0]);
        y.add(p[1]);
    }
    EXPECT_NEAR(x.mean(), 1000.0, 25.0);
    EXPECT_NEAR(y.mean(), 1000.0, 25.0);
    // Uniform stddev over [0,2000] is 2000/sqrt(12) ~ 577.
    EXPECT_NEAR(x.stddev(), 577.0, 25.0);
}

TEST(Hotspot2d, CenterIsDenser) {
    Rng rng(2);
    auto ds = make_hotspot2d(rng, 10000);
    EXPECT_EQ(ds.points.size(), 10000u);
    std::size_t central = 0;
    for (const auto& p : ds.points) {
        ASSERT_TRUE(ds.domain.contains(p));
        if (std::abs(p[0] - 1000.0) < 200.0 && std::abs(p[1] - 1000.0) < 200.0)
            ++central;
    }
    // The central 4% of the area should hold far more than 4% of the
    // points (half the dataset is a sigma=200 Gaussian there).
    EXPECT_GT(central, 10000u / 5);
}

TEST(Correl2d, PointsHugTheDiagonal) {
    Rng rng(3);
    auto ds = make_correl2d(rng, 8000);
    OnlineStats diag_offset;
    for (const auto& p : ds.points) {
        ASSERT_TRUE(ds.domain.contains(p));
        diag_offset.add((p[0] - p[1]) / std::numbers::sqrt2);
    }
    EXPECT_NEAR(diag_offset.mean(), 0.0, 5.0);
    // Perpendicular spread should be the configured sigma (2000/25 = 80),
    // modulo clamping at the domain edges.
    EXPECT_LT(diag_offset.stddev(), 100.0);
    EXPECT_GT(diag_offset.stddev(), 50.0);
}

TEST(Dsmc3d, NonUniformWithCompressionFront) {
    Rng rng(4);
    auto ds = make_dsmc3d(rng, 20000);
    EXPECT_EQ(ds.points.size(), 20000u);
    std::size_t front = 0, wake = 0;
    double front_vol = 0.15 * 0.4 * 0.4, wake_vol = 0.15 * 0.4 * 0.4;
    for (const auto& p : ds.points) {
        ASSERT_TRUE(ds.domain.contains(p));
        bool footprint = p[1] >= 0.3 && p[1] < 0.7 && p[2] >= 0.3 && p[2] < 0.7;
        if (footprint && p[0] >= 0.40 && p[0] < 0.55) ++front;
        if (footprint && p[0] >= 0.55 && p[0] < 0.70) ++wake;
    }
    // Compression zone denser than the wake by a large factor.
    double front_density = static_cast<double>(front) / front_vol;
    double wake_density = static_cast<double>(wake) / wake_vol;
    EXPECT_GT(front_density, 2.0 * wake_density);
}

TEST(Stock3d, ExactCountAndAxisStructure) {
    Rng rng(5);
    auto ds = make_stock3d(rng, 30000, 100);
    EXPECT_EQ(ds.points.size(), 30000u);
    std::set<double> ids;
    for (const auto& p : ds.points) {
        ASSERT_TRUE(ds.domain.contains(p));
        ids.insert(p[0]);
        ASSERT_GE(p[1], 1.0);           // price clamp
        ASSERT_LT(p[1], 500.0);
        ASSERT_GE(p[2], 0.0);           // day range
        ASSERT_LT(p[2], 520.0);
    }
    // Many distinct stock ids used (wraps around the 100 stocks; random
    // span lengths leave a few stocks unreached at this reduced count).
    EXPECT_GE(ids.size(), 75u);
}

TEST(Stock3d, PerStockPricesAreAutocorrelated) {
    // A random walk stays near its start: per-stock price stddev must be
    // far below the global cross-stock spread — the per-stock hot-spot
    // structure the paper describes.
    Rng rng(6);
    auto ds = make_stock3d(rng, 40000, 120);
    std::map<double, OnlineStats> per_stock;
    OnlineStats global;
    for (const auto& p : ds.points) {
        per_stock[p[0]].add(p[1]);
        global.add(p[1]);
    }
    OnlineStats within;
    for (auto& [id, s] : per_stock) {
        if (s.count() > 10) within.add(s.stddev());
    }
    EXPECT_LT(within.mean(), 0.5 * global.stddev());
}

TEST(Dsmc4d, SnapshotTimestampsAndDrift) {
    Rng rng(7);
    auto ds = make_dsmc4d(rng, 6, 3000);
    EXPECT_EQ(ds.points.size(), 6u * 3000u);
    // t coordinates are snapshot-centered values i + 0.5.
    std::set<double> ts;
    for (const auto& p : ds.points) {
        ASSERT_TRUE(ds.domain.contains(p));
        ts.insert(p[0]);
    }
    EXPECT_EQ(ts.size(), 6u);
    EXPECT_DOUBLE_EQ(*ts.begin(), 0.5);
    EXPECT_DOUBLE_EQ(*ts.rbegin(), 5.5);
    // The dense front advects: mean x of in-footprint particles grows.
    auto mean_x = [&](double t) {
        OnlineStats s;
        for (const auto& p : ds.points) {
            if (p[0] == t && p[2] >= 0.3 && p[2] < 0.7 && p[3] >= 0.3 &&
                p[3] < 0.7) {
                s.add(p[1]);
            }
        }
        return s.mean();
    };
    EXPECT_LT(mean_x(0.5), mean_x(5.5));
}

TEST(Mhd3d, SheathDenseCavityEmptyObstacleVoid) {
    Rng rng(21);
    auto ds = make_mhd3d(rng, 30000);
    EXPECT_EQ(ds.points.size(), 30000u);
    std::size_t in_obstacle = 0, in_cavity = 0, in_sheath = 0, upstream = 0;
    for (const auto& p : ds.points) {
        ASSERT_TRUE(ds.domain.contains(p));
        double dx = p[0] - 0.35, dy = p[1] - 0.5, dz = p[2] - 0.5;
        double r = std::sqrt(dx * dx + dy * dy + dz * dz);
        if (r < 0.08) ++in_obstacle;
        if (dx > 0.05 && dx < 0.3 && dy * dy + dz * dz < 0.0064 / 2)
            ++in_cavity;
        if (p[0] > 0.25 && p[0] < 0.35 && dy * dy + dz * dz < 0.01)
            ++in_sheath;
        if (p[0] < 0.15) ++upstream;
    }
    EXPECT_EQ(in_obstacle, 0u);  // no plasma inside the planet
    // Sheath sampling density beats the shadowed cavity by a wide margin.
    double sheath_vol = 0.1 * 0.01 * 3.14159;
    double cavity_vol = 0.25 * (0.0064 / 2) * 3.14159;
    EXPECT_GT(static_cast<double>(in_sheath) / sheath_vol,
              2.0 * static_cast<double>(in_cavity) / cavity_vol);
    // Upstream solar wind stays close to uniform (15% of the volume).
    EXPECT_NEAR(static_cast<double>(upstream) / 30000.0, 0.15 * 0.8, 0.06);
}

TEST(Mhd3d, BuildsAQueryableGridFile) {
    Rng rng(23);
    auto ds = make_mhd3d(rng, 20000);
    GridFile<3> gf = ds.build();
    EXPECT_EQ(gf.record_count(), 20000u);
    EXPECT_GT(gf.merged_bucket_count(), 0u);  // skewed => merged buckets
    EXPECT_EQ(gf.query_records(ds.domain).size(), 20000u);
}

TEST(Datasets, DeterministicPerSeed) {
    Rng a(42), b(42);
    auto da = make_hotspot2d(a, 2000);
    auto db = make_hotspot2d(b, 2000);
    ASSERT_EQ(da.points.size(), db.points.size());
    for (std::size_t i = 0; i < da.points.size(); ++i) {
        ASSERT_EQ(da.points[i], db.points[i]);
    }
}

TEST(Datasets, BuildProducesQueryableGridFiles) {
    Rng rng(8);
    auto ds = make_uniform2d(rng, 3000);
    GridFile<2> gf = ds.build();
    EXPECT_EQ(gf.record_count(), 3000u);
    EXPECT_GT(gf.bucket_count(), 10u);
    EXPECT_EQ(gf.query_records(ds.domain).size(), 3000u);
}

TEST(Datasets, BucketCountsRoughlyMatchPaper) {
    // Paper (Sec. 2.2): ~250 buckets for the 10k-point 2-d datasets. The
    // generators and capacities must land in the same regime (hundreds of
    // buckets, not tens or thousands).
    Rng rng(9);
    auto uniform = make_uniform2d(rng).build();
    EXPECT_GT(uniform.bucket_count(), 120u);
    EXPECT_LT(uniform.bucket_count(), 700u);
    auto hot = make_hotspot2d(rng).build();
    EXPECT_GT(hot.bucket_count(), 120u);
    EXPECT_LT(hot.bucket_count(), 700u);
    // hot.2d must have far more merged buckets than uniform.2d
    // (paper: 169/241 vs 4/252).
    EXPECT_GT(hot.merged_bucket_count() * 4,
              uniform.merged_bucket_count() * 4 + hot.bucket_count());
}

}  // namespace
}  // namespace pgf
