#include "pgf/storage/partition.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "pgf/decluster/registry.hpp"
#include "pgf/storage/paged_grid_file.hpp"
#include "pgf/util/rng.hpp"
#include "temp_path.hpp"

namespace pgf {
namespace {

class PartitionTest : public ::testing::Test {
protected:
    std::filesystem::path store_ = test::unique_temp_path("pgf_partition_src");
    std::string prefix_ =
        test::unique_temp_path("pgf_partition_out", "").string();
    std::uint32_t disks_ = 4;

    void TearDown() override {
        std::filesystem::remove(store_);
        for (std::uint32_t d = 0; d < 16; ++d) {
            std::filesystem::remove(prefix_ + ".disk" + std::to_string(d));
        }
    }
};

TEST_F(PartitionTest, SplitsEveryBucketPageOntoItsDisk) {
    PagedGridFile<2>::Config cfg;
    cfg.page_size = 256;
    Rect<2> domain{{{0.0, 0.0}}, {{1.0, 1.0}}};
    PagedGridFile<2> pf(store_.string(), domain, cfg);
    Rng rng(3);
    for (std::uint64_t i = 0; i < 600; ++i) {
        pf.insert({{rng.uniform(), rng.uniform()}}, i);
    }
    pf.flush();
    GridStructure gs = pf.structure();
    Assignment a = decluster(gs, Method::kMinimax, disks_, {.seed = 5});
    std::vector<std::uint64_t> pages;
    for (std::uint32_t b = 0; b < pf.bucket_count(); ++b) {
        pages.push_back(pf.bucket_page(b));
    }

    PartitionResult result =
        partition_pages(store_.string(), pages, a, prefix_);
    ASSERT_EQ(result.paths.size(), disks_);
    ASSERT_EQ(result.location.size(), pf.bucket_count());

    // Page counts per disk equal the assignment's load.
    auto load = a.load();
    std::uint64_t total = 0;
    for (std::uint32_t d = 0; d < disks_; ++d) {
        EXPECT_EQ(result.pages_per_disk[d], load[d]) << "disk " << d;
        total += result.pages_per_disk[d];
        auto file = PageFile::open(result.paths[d]);
        EXPECT_EQ(file.page_count(), load[d]);
    }
    EXPECT_EQ(total, pf.bucket_count());

    // Every bucket's bytes are identical in source and destination.
    auto source = PageFile::open(store_.string());
    std::vector<std::byte> src(cfg.page_size), dst(cfg.page_size);
    for (std::uint32_t b = 0; b < pf.bucket_count(); ++b) {
        auto [d, page] = result.location[b];
        EXPECT_EQ(d, a.disk_of[b]);
        source.read(pages[b], src);
        auto file = PageFile::open(result.paths[d]);
        file.read(page, dst);
        ASSERT_EQ(src, dst) << "bucket " << b;
    }
}

TEST_F(PartitionTest, BucketOrderWithinADiskIsSequential) {
    PagedGridFile<2>::Config cfg;
    cfg.page_size = 256;
    Rect<2> domain{{{0.0, 0.0}}, {{1.0, 1.0}}};
    PagedGridFile<2> pf(store_.string(), domain, cfg);
    Rng rng(7);
    for (std::uint64_t i = 0; i < 400; ++i) {
        pf.insert({{rng.uniform(), rng.uniform()}}, i);
    }
    pf.flush();
    Assignment a = decluster(pf.structure(), Method::kHilbert, disks_,
                             {.seed = 9});
    std::vector<std::uint64_t> pages;
    for (std::uint32_t b = 0; b < pf.bucket_count(); ++b) {
        pages.push_back(pf.bucket_page(b));
    }
    PartitionResult result =
        partition_pages(store_.string(), pages, a, prefix_);
    // Within a disk, later buckets sit on later pages (appended in bucket
    // order) — the property the sequential-read disk model rewards.
    std::vector<std::uint64_t> last(disks_, 0);
    std::vector<bool> seen(disks_, false);
    for (std::uint32_t b = 0; b < pf.bucket_count(); ++b) {
        auto [d, page] = result.location[b];
        if (seen[d]) {
            EXPECT_EQ(page, last[d] + 1) << "bucket " << b;
        }
        seen[d] = true;
        last[d] = page;
    }
}

TEST_F(PartitionTest, RejectsMismatchedInputs) {
    PagedGridFile<2>::Config cfg;
    cfg.page_size = 256;
    Rect<2> domain{{{0.0, 0.0}}, {{1.0, 1.0}}};
    PagedGridFile<2> pf(store_.string(), domain, cfg);
    pf.insert({{0.5, 0.5}}, 1);
    pf.flush();
    Assignment a;
    a.num_disks = 2;
    a.disk_of = {0, 1};  // two buckets claimed, file has one
    EXPECT_THROW(partition_pages(store_.string(), {0}, a, prefix_),
                 CheckError);
    Assignment bad;
    bad.num_disks = 2;
    bad.disk_of = {5};
    EXPECT_THROW(partition_pages(store_.string(), {0}, bad, prefix_),
                 CheckError);
}

}  // namespace
}  // namespace pgf
