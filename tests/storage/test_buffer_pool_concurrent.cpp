// Concurrent BufferPool stress tests (run under the tsan preset in CI).
//
// The pool's contract under concurrency: fetch/allocate/mark_dirty/unpin
// are safe from any number of threads; a pinned frame's bytes are stable;
// only the *bytes of one page* are the caller's responsibility (page-level
// latching lives above the pool). The tests therefore let threads hammer
// the shared pool metadata — table, pins, LRU, writebacks — while each
// page's bytes have a single writer, so TSan findings point at the pool,
// not the test.
//
// Exhaustion deliberately still throws (same as single-threaded), so
// stressors bound their in-flight pins with a counting semaphore instead
// of expecting fetch to wait.
#include "pgf/storage/buffer_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <semaphore>
#include <thread>
#include <vector>

#include "pgf/storage/page.hpp"
#include "pgf/util/check.hpp"
#include "temp_path.hpp"

namespace pgf {
namespace {

// Parameterized over every replacement policy: the concurrency contract
// (pins gate eviction, no lost updates, exact hit+miss ledger) is policy-
// independent, so the same stressors must pass for LRU, LRU-K, CLOCK and
// 2Q alike.
class BufferPoolConcurrentTest
    : public ::testing::TestWithParam<ReplacementPolicy> {
protected:
    std::filesystem::path path_ =
        test::unique_temp_path("pgf_bufpool_conc_test");

    BufferPoolConfig config() const { return {GetParam(), 2}; }

    void TearDown() override { std::filesystem::remove(path_); }
};

// 2-frame pool, 8 threads, 8 pages: every fetch contends for a frame, so
// the whole evict/writeback/reload machinery runs constantly. Each thread
// owns one page and increments a little-endian counter in it; every
// increment must survive the page's round trips through disk, so a single
// lost update (torn eviction, stale reload, aliased frame) shows up in the
// final tally.
TEST_P(BufferPoolConcurrentTest, TinyPoolEvictionStressKeepsEveryUpdate) {
    constexpr unsigned kThreads = 8;
    constexpr int kIters = 400;
    auto pf = PageFile::create(path_.string(), 128);
    BufferPool pool(pf, 2, config());
    for (unsigned t = 0; t < kThreads; ++t) {
        auto page = pool.allocate();
        ASSERT_EQ(page.page_id(), t);
        page.mark_dirty();
    }

    // Two permits for two frames: at most two pins are ever outstanding,
    // so fetch never sees an all-pinned pool.
    std::counting_semaphore<2> frames(2);
    auto bump = [&](std::uint64_t page_id) {
        frames.acquire();
        {
            auto page = pool.fetch(page_id);
            auto data = page.data();
            std::uint64_t v = 0;
            for (std::size_t i = 0; i < 8; ++i) {
                v |= static_cast<std::uint64_t>(data[i]) << (8 * i);
            }
            ++v;
            for (std::size_t i = 0; i < 8; ++i) {
                data[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
            }
            page.mark_dirty();
        }
        frames.release();
    };

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) bump(t);
        });
    }
    for (std::thread& t : threads) t.join();

    EXPECT_EQ(pool.pinned_frames(), 0u);
    // Every fetch is exactly one hit or one miss (allocate counts as
    // neither), so the counters must tally the fetches exactly.
    EXPECT_EQ(pool.hits() + pool.misses(),
              static_cast<std::uint64_t>(kThreads) * kIters);

    pool.flush_all();
    std::vector<std::byte> raw(128);
    for (unsigned t = 0; t < kThreads; ++t) {
        pf.read(t, raw);
        std::uint64_t v = 0;
        for (std::size_t i = 0; i < 8; ++i) {
            // PageRef::data() is the payload view past the page header.
            v |= static_cast<std::uint64_t>(raw[kPageHeaderBytes + i])
                 << (8 * i);
        }
        EXPECT_EQ(v, static_cast<std::uint64_t>(kIters)) << "page " << t;
    }
}

// Many readers share one frame: all pins land on the same page, so the
// pin-count bookkeeping and the PageRef data-span snapshot are exercised
// with maximal aliasing. Readers verify the bytes they see.
TEST_P(BufferPoolConcurrentTest, ConcurrentReadersShareOneFrame) {
    constexpr unsigned kThreads = 8;
    auto pf = PageFile::create(path_.string(), 128);
    BufferPool pool(pf, 2, config());
    {
        auto page = pool.allocate();
        auto data = page.data();
        for (std::size_t i = 0; i < data.size(); ++i) {
            data[i] = static_cast<std::byte>(i & 0xff);
        }
        page.mark_dirty();
    }

    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 500; ++i) {
                auto page = pool.fetch(0);
                auto data = page.data();
                for (std::size_t k = 0; k < data.size(); ++k) {
                    if (data[k] != static_cast<std::byte>(k & 0xff)) {
                        mismatches.fetch_add(1, std::memory_order_relaxed);
                        break;
                    }
                }
            }
        });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(pool.pinned_frames(), 0u);
    EXPECT_EQ(pool.misses(), 0u);  // page 0 never left the pool: all hits
}

// Concurrent allocate() calls must hand out distinct pages and keep each
// initial stamp intact through eviction pressure.
TEST_P(BufferPoolConcurrentTest, ConcurrentAllocationsAreDistinct) {
    constexpr unsigned kThreads = 4;
    constexpr int kPerThread = 16;
    auto pf = PageFile::create(path_.string(), 128);
    BufferPool pool(pf, 4, config());  // 4 frames, <= 4 concurrent pins

    std::vector<std::vector<std::uint64_t>> ids(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                auto page = pool.allocate();
                ids[t].push_back(page.page_id());
                page.data()[0] = static_cast<std::byte>(page.page_id() & 0xff);
                page.mark_dirty();
            }
        });
    }
    for (std::thread& t : threads) t.join();

    std::vector<std::uint64_t> all;
    for (const auto& v : ids) all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
        << "two allocations returned the same page";
    EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kPerThread);

    pool.flush_all();
    std::vector<std::byte> raw(128);
    for (std::uint64_t id : all) {
        pf.read(id, raw);
        EXPECT_EQ(raw[kPageHeaderBytes], static_cast<std::byte>(id & 0xff))
            << "page " << id;
    }
}

// Unpins racing evictions: one half of the threads cycles pins on a hot
// page while the other half streams through cold pages, forcing the hot
// frame's pin count to gate eviction correctly.
TEST_P(BufferPoolConcurrentTest, PinsGateEvictionUnderChurn) {
    auto pf = PageFile::create(path_.string(), 128);
    constexpr std::uint64_t kCold = 6;
    BufferPool pool(pf, 3, config());
    for (std::uint64_t i = 0; i < 1 + kCold; ++i) pf.allocate();
    {
        auto hot = pool.fetch(0);
        hot.data()[0] = std::byte{0x5A};
        hot.mark_dirty();
    }

    std::atomic<bool> stop{false};
    std::atomic<int> bad_reads{0};
    // Two churners + two pinners, 3 frames: a churner and a pinner can
    // each hold a pin and there is still a frame to steal.
    std::vector<std::thread> threads;
    for (int t = 0; t < 2; ++t) {
        threads.emplace_back([&] {
            std::uint64_t next = 1;
            while (!stop.load(std::memory_order_relaxed)) {
                (void)pool.fetch(1 + (next++ % kCold));
            }
        });
    }
    for (int t = 0; t < 2; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 500; ++i) {
                auto hot = pool.fetch(0);
                if (hot.data()[0] != std::byte{0x5A}) {
                    bad_reads.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (std::size_t t = 2; t < threads.size(); ++t) threads[t].join();
    stop.store(true, std::memory_order_relaxed);
    threads[0].join();
    threads[1].join();

    EXPECT_EQ(bad_reads.load(), 0);
    EXPECT_EQ(pool.pinned_frames(), 0u);
}

// Prefetchers racing demand fetches on a tiny pool: read-ahead staging
// must never corrupt what a concurrent fetch sees, never pin anything,
// and keep the exact hit+miss ledger (prefetch reads count in neither).
TEST_P(BufferPoolConcurrentTest, PrefetchRacesDemandFetches) {
    constexpr std::uint64_t kPages = 8;
    constexpr int kIters = 400;
    auto pf = PageFile::create(path_.string(), 128);
    BufferPool pool(pf, 4, config());
    std::vector<std::byte> raw(128);
    for (std::uint64_t p = 0; p < kPages; ++p) {
        ASSERT_EQ(pf.allocate(), p);
        raw.assign(128, static_cast<std::byte>(p & 0xff));
        pf.write(p, raw);
    }

    std::atomic<bool> stop{false};
    std::atomic<int> bad_reads{0};
    std::vector<std::thread> threads;
    // Two prefetchers sweep overlapping windows; two fetchers (bounded to
    // two outstanding pins by the semaphore, leaving stealable frames)
    // verify every byte they see.
    std::counting_semaphore<2> pins(2);
    for (int t = 0; t < 2; ++t) {
        threads.emplace_back([&, t] {
            std::uint64_t base = static_cast<std::uint64_t>(t);
            std::vector<std::uint64_t> window(3);
            while (!stop.load(std::memory_order_relaxed)) {
                for (std::size_t i = 0; i < window.size(); ++i) {
                    window[i] = (base + i) % kPages;
                }
                pool.prefetch(window);
                ++base;
            }
        });
    }
    for (int t = 0; t < 2; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                const auto id =
                    static_cast<std::uint64_t>(i + t * 3) % kPages;
                pins.acquire();
                {
                    auto page = pool.fetch(id);
                    for (std::byte b : page.data()) {
                        if (b != static_cast<std::byte>(id & 0xff)) {
                            bad_reads.fetch_add(1,
                                                std::memory_order_relaxed);
                            break;
                        }
                    }
                }
                pins.release();
            }
        });
    }
    threads[2].join();
    threads[3].join();
    stop.store(true, std::memory_order_relaxed);
    threads[0].join();
    threads[1].join();

    EXPECT_EQ(bad_reads.load(), 0);
    EXPECT_EQ(pool.pinned_frames(), 0u);
    // Every fetch is exactly one hit or one miss; prefetch staging counts
    // in its own prefetch_issued, never in the demand ledger.
    EXPECT_EQ(pool.hits() + pool.misses(), 2ull * kIters);
    EXPECT_LE(pool.prefetch_hits(), pool.hits());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, BufferPoolConcurrentTest,
    ::testing::Values(ReplacementPolicy::kLru, ReplacementPolicy::kLruK,
                      ReplacementPolicy::kClock, ReplacementPolicy::kTwoQ,
                      ReplacementPolicy::kLfu),
    [](const ::testing::TestParamInfo<ReplacementPolicy>& param_info) {
        switch (param_info.param) {
            case ReplacementPolicy::kLru: return "lru";
            case ReplacementPolicy::kLruK: return "lruk";
            case ReplacementPolicy::kClock: return "clock";
            case ReplacementPolicy::kTwoQ: return "twoq";
            case ReplacementPolicy::kLfu: return "lfu";
        }
        return "unknown";
    });

}  // namespace
}  // namespace pgf
