#include "pgf/storage/page_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <vector>

#include "pgf/util/check.hpp"
#include "pgf/util/rng.hpp"
#include "temp_path.hpp"

namespace pgf {
namespace {

class PageFileTest : public ::testing::Test {
protected:
    std::filesystem::path path_ = test::unique_temp_path("pgf_pagefile_test");

    void TearDown() override { std::filesystem::remove(path_); }
};

std::vector<std::byte> pattern(std::size_t size, std::uint8_t seed) {
    std::vector<std::byte> buf(size);
    for (std::size_t i = 0; i < size; ++i) {
        buf[i] = static_cast<std::byte>((seed + i * 7) & 0xff);
    }
    return buf;
}

TEST_F(PageFileTest, CreateAllocateRoundTrip) {
    auto pf = PageFile::create(path_.string(), 256);
    EXPECT_EQ(pf.page_size(), 256u);
    EXPECT_EQ(pf.page_count(), 0u);
    std::uint64_t a = pf.allocate();
    std::uint64_t b = pf.allocate();
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    auto data = pattern(256, 42);
    pf.write(a, data);
    std::vector<std::byte> out(256);
    pf.read(a, out);
    EXPECT_EQ(out, data);
    // The other page stays zeroed.
    pf.read(b, out);
    for (std::byte x : out) EXPECT_EQ(x, std::byte{0});
}

TEST_F(PageFileTest, PersistsAcrossReopen) {
    {
        auto pf = PageFile::create(path_.string(), 128);
        pf.allocate();
        pf.allocate();
        pf.write(1, pattern(128, 9));
        pf.sync();
    }
    auto pf = PageFile::open(path_.string());
    EXPECT_EQ(pf.page_size(), 128u);
    EXPECT_EQ(pf.page_count(), 2u);
    std::vector<std::byte> out(128);
    pf.read(1, out);
    EXPECT_EQ(out, pattern(128, 9));
}

TEST_F(PageFileTest, DestructorPersistsSuperblock) {
    {
        auto pf = PageFile::create(path_.string(), 128);
        pf.allocate();
        // no explicit sync
    }
    auto pf = PageFile::open(path_.string());
    EXPECT_EQ(pf.page_count(), 1u);
}

TEST_F(PageFileTest, RejectsBadAccess) {
    auto pf = PageFile::create(path_.string(), 128);
    std::vector<std::byte> buf(128);
    EXPECT_THROW(pf.read(0, buf), CheckError);  // nothing allocated
    pf.allocate();
    std::vector<std::byte> wrong(64);
    EXPECT_THROW(pf.read(0, wrong), CheckError);
    EXPECT_THROW(pf.write(0, wrong), CheckError);
    EXPECT_THROW(pf.write(5, buf), CheckError);
}

TEST_F(PageFileTest, RejectsTinyPagesAndBadMagic) {
    EXPECT_THROW(PageFile::create(path_.string(), 8), CheckError);
    {
        std::ofstream out(path_);
        out << "this is not a page file at all, sorry";
    }
    EXPECT_THROW(PageFile::open(path_.string()), CheckError);
    EXPECT_THROW(PageFile::open("/nonexistent-dir/nope.db"), CheckError);
}

TEST_F(PageFileTest, ManyPagesRandomAccess) {
    auto pf = PageFile::create(path_.string(), 64);
    constexpr std::size_t kPages = 200;
    for (std::size_t i = 0; i < kPages; ++i) pf.allocate();
    Rng rng(3);
    // Random write/read interleaving; -1 marks a never-written page, which
    // must read back as zeros.
    std::vector<int> seeds(kPages, -1);
    for (int op = 0; op < 1000; ++op) {
        auto page = static_cast<std::uint64_t>(rng.below(kPages));
        if (rng.uniform() < 0.5) {
            seeds[page] = static_cast<int>(rng.below(256));
            pf.write(page, pattern(64, static_cast<std::uint8_t>(seeds[page])));
        } else {
            std::vector<std::byte> out(64);
            pf.read(page, out);
            std::vector<std::byte> expected =
                seeds[page] < 0
                    ? std::vector<std::byte>(64, std::byte{0})
                    : pattern(64, static_cast<std::uint8_t>(seeds[page]));
            ASSERT_EQ(out, expected) << "page " << page;
        }
    }
}

}  // namespace
}  // namespace pgf
