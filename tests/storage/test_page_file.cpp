#include "pgf/storage/page_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <vector>

#include "pgf/storage/page.hpp"
#include "pgf/util/check.hpp"
#include "pgf/util/rng.hpp"
#include "temp_path.hpp"

namespace pgf {
namespace {

class PageFileTest : public ::testing::Test {
protected:
    std::filesystem::path path_ = test::unique_temp_path("pgf_pagefile_test");

    void TearDown() override { std::filesystem::remove(path_); }
};

std::vector<std::byte> pattern(std::size_t size, std::uint8_t seed) {
    std::vector<std::byte> buf(size);
    for (std::size_t i = 0; i < size; ++i) {
        buf[i] = static_cast<std::byte>((seed + i * 7) & 0xff);
    }
    return buf;
}

/// The payload region of a full page image (write() owns the rest).
std::span<const std::byte> payload_of(std::span<const std::byte> page) {
    return page.subspan(kPageHeaderBytes);
}

bool payload_equal(std::span<const std::byte> a,
                   std::span<const std::byte> b) {
    return std::equal(payload_of(a).begin(), payload_of(a).end(),
                      payload_of(b).begin(), payload_of(b).end());
}

TEST_F(PageFileTest, CreateAllocateRoundTrip) {
    auto pf = PageFile::create(path_.string(), 256);
    EXPECT_EQ(pf.page_size(), 256u);
    EXPECT_EQ(pf.payload_size(), 256u - kPageHeaderBytes);
    EXPECT_EQ(pf.page_count(), 0u);
    std::uint64_t a = pf.allocate();
    std::uint64_t b = pf.allocate();
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    auto data = pattern(256, 42);
    std::vector<std::byte> out(256);
    pf.write(a, data);
    pf.read(a, out);
    // write() owns the crc/version/flags fields but passes the payload
    // (and the LSN field) through verbatim.
    EXPECT_TRUE(payload_equal(out, data));
    EXPECT_EQ(page_version(out), kPageFormatVersion);
    EXPECT_EQ(page_lsn(out), page_lsn(data));
    EXPECT_TRUE(page_checksum_ok(out));
    // The other page stays zeroed (stamped header aside).
    pf.read(b, out);
    EXPECT_EQ(page_lsn(out), 0u);
    for (std::byte x : payload_of(out)) EXPECT_EQ(x, std::byte{0});
}

TEST_F(PageFileTest, PersistsAcrossReopen) {
    {
        auto pf = PageFile::create(path_.string(), 128);
        pf.allocate();
        pf.allocate();
        pf.write(1, pattern(128, 9));
        pf.sync();
    }
    auto pf = PageFile::open(path_.string());
    EXPECT_EQ(pf.page_size(), 128u);
    EXPECT_EQ(pf.page_count(), 2u);
    std::vector<std::byte> out(128);
    pf.read(1, out);
    EXPECT_TRUE(payload_equal(out, pattern(128, 9)));
}

TEST_F(PageFileTest, DestructorPersistsSuperblock) {
    {
        auto pf = PageFile::create(path_.string(), 128);
        pf.allocate();
        // no explicit sync
    }
    auto pf = PageFile::open(path_.string());
    EXPECT_EQ(pf.page_count(), 1u);
}

TEST_F(PageFileTest, RejectsBadAccess) {
    auto pf = PageFile::create(path_.string(), 128);
    std::vector<std::byte> buf(128);
    EXPECT_THROW(pf.read(0, buf), CheckError);  // nothing allocated
    pf.allocate();
    std::vector<std::byte> wrong(64);
    EXPECT_THROW(pf.read(0, wrong), CheckError);
    EXPECT_THROW(pf.write(0, wrong), CheckError);
    EXPECT_THROW(pf.write(5, buf), CheckError);
}

TEST_F(PageFileTest, RejectsTinyPagesAndBadMagic) {
    EXPECT_THROW(PageFile::create(path_.string(), 8), CheckError);
    {
        std::ofstream out(path_);
        out << "this is not a page file at all, sorry";
    }
    EXPECT_THROW(PageFile::open(path_.string()), CheckError);
    EXPECT_THROW(PageFile::open("/nonexistent-dir/nope.db"), CheckError);
}

TEST_F(PageFileTest, ManyPagesRandomAccess) {
    auto pf = PageFile::create(path_.string(), 64);
    constexpr std::size_t kPages = 200;
    for (std::size_t i = 0; i < kPages; ++i) pf.allocate();
    Rng rng(3);
    // Random write/read interleaving; -1 marks a never-written page, which
    // must read back as zeros.
    std::vector<int> seeds(kPages, -1);
    for (int op = 0; op < 1000; ++op) {
        auto page = static_cast<std::uint64_t>(rng.below(kPages));
        if (rng.uniform() < 0.5) {
            seeds[page] = static_cast<int>(rng.below(256));
            pf.write(page, pattern(64, static_cast<std::uint8_t>(seeds[page])));
        } else {
            std::vector<std::byte> out(64);
            pf.read(page, out);
            std::vector<std::byte> expected =
                seeds[page] < 0
                    ? std::vector<std::byte>(64, std::byte{0})
                    : pattern(64, static_cast<std::uint8_t>(seeds[page]));
            ASSERT_TRUE(payload_equal(out, expected)) << "page " << page;
        }
    }
}

// ------------------------------------------------ durability header --

TEST_F(PageFileTest, FlippedByteFailsChecksumAsTypedError) {
    {
        auto pf = PageFile::create(path_.string(), 64);
        pf.allocate();
        pf.write(0, pattern(64, 5));
        pf.sync();
    }
    // Flip one payload byte behind the file's back.
    {
        std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
        f.seekg(24 + 40);  // superblock + into page 0's payload
        char byte = 0;
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x40);
        f.seekp(24 + 40);
        f.write(&byte, 1);
    }
    auto pf = PageFile::open(path_.string());
    std::vector<std::byte> out(64);
    EXPECT_THROW(pf.read(0, out), CheckError);
    EXPECT_FALSE(pf.try_read(0, out));  // no-throw probe agrees
}

TEST_F(PageFileTest, TornPageFailsChecksumButZeroExtensionVerifies) {
    auto pf = PageFile::create(path_.string(), 64);
    pf.allocate();
    pf.allocate();
    std::vector<std::byte> out(64);
    // A page the filesystem extended with zeros is a *valid empty page*
    // (zero-init CRC32C of zeros is zero): reading entirely past the
    // physical tail yields all zeros, which verifies.
    pf.sync();  // push buffered writes out before truncating externally
    std::filesystem::resize_file(path_, 24 + 64);
    EXPECT_TRUE(pf.try_read(1, out));
    EXPECT_EQ(page_lsn(out), 0u);
    // But a page torn mid-write (nonzero prefix, missing tail) fails.
    pf.write(0, pattern(64, 7));
    pf.sync();
    std::filesystem::resize_file(path_, 24 + 20);
    EXPECT_FALSE(pf.try_read(0, out));
}

TEST_F(PageFileTest, WritePayloadRoundTripsLsn) {
    auto pf = PageFile::create(path_.string(), 64);
    pf.allocate();
    const auto body = pattern(pf.payload_size(), 3);
    pf.write_payload(0, body, 77);
    std::vector<std::byte> out(64);
    pf.read(0, out);
    EXPECT_EQ(page_lsn(out), 77u);
    EXPECT_EQ(page_version(out), kPageFormatVersion);
    EXPECT_TRUE(std::equal(body.begin(), body.end(),
                           out.begin() + kPageHeaderBytes));
    // ensure_page_count grows with zeroed (still valid) pages.
    pf.ensure_page_count(5);
    EXPECT_EQ(pf.page_count(), 5u);
    EXPECT_TRUE(pf.try_read(4, out));
}

}  // namespace
}  // namespace pgf
