#include "pgf/storage/buffer_pool.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "pgf/storage/page.hpp"
#include "pgf/util/check.hpp"
#include "temp_path.hpp"

namespace pgf {
namespace {

class BufferPoolTest : public ::testing::Test {
protected:
    std::filesystem::path path_ = test::unique_temp_path("pgf_bufpool_test");

    void TearDown() override { std::filesystem::remove(path_); }
};

TEST_F(BufferPoolTest, AllocateWriteReadThroughCache) {
    auto pf = PageFile::create(path_.string(), 128);
    BufferPool pool(pf, 4);
    std::uint64_t id;
    {
        auto page = pool.allocate();
        id = page.page_id();
        page.data()[0] = std::byte{0xAB};
        page.mark_dirty();
    }
    auto page = pool.fetch(id);
    EXPECT_EQ(page.data()[0], std::byte{0xAB});
    EXPECT_EQ(pool.hits(), 1u);  // still resident
}

TEST_F(BufferPoolTest, DirtyPagesSurviveEviction) {
    auto pf = PageFile::create(path_.string(), 128);
    BufferPool pool(pf, 2);
    for (int i = 0; i < 6; ++i) {
        auto page = pool.allocate();
        page.data()[0] = static_cast<std::byte>(0x10 + i);
        page.mark_dirty();
    }
    // Capacity 2 with 6 pages: four evictions + writebacks happened.
    EXPECT_GE(pool.evictions(), 4u);
    EXPECT_GE(pool.writebacks(), 4u);
    for (std::uint64_t i = 0; i < 6; ++i) {
        auto page = pool.fetch(i);
        EXPECT_EQ(page.data()[0], static_cast<std::byte>(0x10 + i)) << i;
    }
}

TEST_F(BufferPoolTest, LruKeepsHotPages) {
    auto pf = PageFile::create(path_.string(), 128);
    BufferPool pool(pf, 2);
    for (int i = 0; i < 3; ++i) pf.allocate();
    (void)pool.fetch(0);
    (void)pool.fetch(1);
    (void)pool.fetch(0);  // refresh 0
    (void)pool.fetch(2);  // evicts 1
    std::uint64_t misses_before = pool.misses();
    (void)pool.fetch(0);
    EXPECT_EQ(pool.misses(), misses_before);  // 0 still resident
    (void)pool.fetch(1);
    EXPECT_EQ(pool.misses(), misses_before + 1);  // 1 was evicted
}

TEST_F(BufferPoolTest, PinnedPagesCannotBeEvicted) {
    auto pf = PageFile::create(path_.string(), 128);
    BufferPool pool(pf, 2);
    for (int i = 0; i < 3; ++i) pf.allocate();
    auto p0 = pool.fetch(0);
    auto p1 = pool.fetch(1);
    // Both frames pinned: the third fetch has no victim.
    EXPECT_THROW(pool.fetch(2), CheckError);
}

TEST_F(BufferPoolTest, FlushAllWritesDirtyResidentPages) {
    auto pf = PageFile::create(path_.string(), 128);
    {
        BufferPool pool(pf, 8);
        auto page = pool.allocate();
        page.data()[5] = std::byte{0x77};
        page.mark_dirty();
        pool.flush_all();
        EXPECT_GE(pool.writebacks(), 1u);
    }
    std::vector<std::byte> out(128);
    pf.read(0, out);
    // PageRef::data() is the payload view past the durability header.
    EXPECT_EQ(out[kPageHeaderBytes + 5], std::byte{0x77});
}

TEST_F(BufferPoolTest, DestructorFlushes) {
    auto pf = PageFile::create(path_.string(), 128);
    {
        BufferPool pool(pf, 8);
        auto page = pool.allocate();
        page.data()[9] = std::byte{0x3C};
        page.mark_dirty();
    }
    std::vector<std::byte> out(128);
    pf.read(0, out);
    EXPECT_EQ(out[kPageHeaderBytes + 9], std::byte{0x3C});
}

TEST_F(BufferPoolTest, StatsStartAtZero) {
    auto pf = PageFile::create(path_.string(), 128);
    BufferPool pool(pf, 3);
    EXPECT_EQ(pool.hits(), 0u);
    EXPECT_EQ(pool.misses(), 0u);
    EXPECT_EQ(pool.evictions(), 0u);
    EXPECT_EQ(pool.resident(), 0u);
    EXPECT_EQ(pool.capacity(), 3u);
    EXPECT_THROW(BufferPool(pf, 0), CheckError);
}

TEST_F(BufferPoolTest, ResetSnapshotsAndZeroesCounters) {
    auto pf = PageFile::create(path_.string(), 128);
    BufferPool pool(pf, 2);
    for (int i = 0; i < 3; ++i) pf.allocate();
    (void)pool.fetch(0);
    (void)pool.fetch(1);
    (void)pool.fetch(0);  // hit
    {
        auto page = pool.fetch(2);  // evicts, and dirty so it writes back
        page.mark_dirty();
    }
    pool.flush_all();

    BufferPool::Stats stats = pool.reset();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 3u);
    EXPECT_GE(stats.evictions, 1u);
    EXPECT_GE(stats.writebacks, 1u);

    // Counters are zeroed but the page contents and recency are untouched:
    // the snapshot is a batch boundary, not a cache drop.
    EXPECT_EQ(pool.hits(), 0u);
    EXPECT_EQ(pool.misses(), 0u);
    EXPECT_EQ(pool.evictions(), 0u);
    EXPECT_EQ(pool.writebacks(), 0u);
    (void)pool.fetch(2);  // still resident from before the reset
    BufferPool::Stats next = pool.reset();
    EXPECT_EQ(next.hits, 1u);
    EXPECT_EQ(next.misses, 0u);
    EXPECT_EQ(pool.stats().hits, 0u);
}

TEST_F(BufferPoolTest, PinnedFramesTracksLivePageRefs) {
    auto pf = PageFile::create(path_.string(), 128);
    BufferPool pool(pf, 3);
    for (int i = 0; i < 2; ++i) pf.allocate();
    EXPECT_EQ(pool.pinned_frames(), 0u);
    {
        auto p0 = pool.fetch(0);
        EXPECT_EQ(pool.pinned_frames(), 1u);
        auto p0_again = pool.fetch(0);  // same frame, two pins
        auto p1 = pool.fetch(1);
        EXPECT_EQ(pool.pinned_frames(), 2u);
    }
    // Dropping the refs unpins but keeps the pages resident.
    EXPECT_EQ(pool.pinned_frames(), 0u);
    EXPECT_EQ(pool.resident(), 2u);
}

TEST_F(BufferPoolTest, MoveOfPageRefTransfersPin) {
    auto pf = PageFile::create(path_.string(), 128);
    BufferPool pool(pf, 1);
    pf.allocate();
    {
        auto p = pool.fetch(0);
        auto q = std::move(p);
        EXPECT_EQ(q.page_id(), 0u);
        // Still pinned exactly once: with capacity 1, fetching another page
        // must fail while q lives.
        pf.allocate();
        EXPECT_THROW(pool.fetch(1), CheckError);
    }
    // After q's destruction the frame is evictable again.
    EXPECT_NO_THROW(pool.fetch(1));
}

}  // namespace
}  // namespace pgf
