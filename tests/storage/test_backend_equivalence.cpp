// Backend-equivalence golden tests: the in-memory VectorBucketStore and
// the disk-backed PagedBucketStore run the exact same GridFileCore engine,
// so for the same insertion sequence the two backends must produce
// byte-identical access structures — scales, directory, bucket numbering,
// cell boxes AND per-bucket record order. This is the contract that lets
// every layer above (declustering, partitioning, the parallel server)
// switch backends without changing a single reported number.
#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "pgf/gridfile/grid_file.hpp"
#include "pgf/storage/paged_grid_file.hpp"
#include "pgf/util/rng.hpp"
#include "temp_path.hpp"

namespace pgf {
namespace {

template <std::size_t D>
std::vector<Point<D>> random_points(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<Point<D>> pts(n);
    for (auto& p : pts) {
        for (std::size_t i = 0; i < D; ++i) p[i] = rng.uniform();
    }
    return pts;
}

/// Asserts the full structural identity between the two backends, down to
/// the order of records inside each bucket.
template <std::size_t D>
void expect_identical(const GridFile<D>& gf, const PagedGridFile<D>& pf) {
    ASSERT_EQ(gf.record_count(), pf.record_count());
    ASSERT_EQ(gf.bucket_count(), pf.bucket_count());
    ASSERT_EQ(gf.refinement_count(), pf.refinement_count());

    for (std::size_t i = 0; i < D; ++i) {
        ASSERT_EQ(gf.scale(i).splits(), pf.scale(i).splits()) << "axis " << i;
    }
    ASSERT_EQ(gf.grid_shape(), pf.grid_shape());

    CellBox<D> all;
    all.lo.fill(0);
    all.hi = gf.grid_shape();
    for_each_cell(all, [&](const std::array<std::uint32_t, D>& cell) {
        ASSERT_EQ(gf.directory().at(cell), pf.directory().at(cell));
    });

    for (std::uint32_t b = 0; b < gf.bucket_count(); ++b) {
        ASSERT_EQ(gf.bucket_cells(b).lo, pf.bucket_cells(b).lo) << b;
        ASSERT_EQ(gf.bucket_cells(b).hi, pf.bucket_cells(b).hi) << b;
        const auto& mem = gf.bucket_records(b);
        const auto& paged = pf.bucket_records(b);
        ASSERT_EQ(mem.size(), paged.size()) << b;
        for (std::size_t k = 0; k < mem.size(); ++k) {
            ASSERT_EQ(mem[k].id, paged[k].id) << b << ":" << k;
            ASSERT_EQ(mem[k].point, paged[k].point) << b << ":" << k;
        }
    }
}

template <std::size_t D>
void run_case(SplitPolicy policy, bool bulk, std::size_t n,
              std::uint64_t seed) {
    const auto path = test::unique_temp_path("pgf_backend_equiv");
    Rect<D> domain;
    for (std::size_t d = 0; d < D; ++d) {
        domain.lo[d] = 0.0;
        domain.hi[d] = 1.0;
    }

    typename PagedGridFile<D>::Config pcfg;
    pcfg.page_size = PagedBucketStore<D>::page_size_for(32);
    pcfg.pool_pages = 8;                    // small pool: loads thrash it
    pcfg.split_policy = policy;
    PagedGridFile<D> pf(path.string(), domain, pcfg);

    typename GridFile<D>::Config mcfg;
    mcfg.bucket_capacity = pf.capacity();
    mcfg.split_policy = policy;
    GridFile<D> gf(domain, mcfg);

    const auto pts = random_points<D>(n, seed);
    if (bulk) {
        gf.bulk_load(pts);
        pf.bulk_load(pts);
    } else {
        for (std::size_t i = 0; i < pts.size(); ++i) {
            gf.insert(pts[i], i);
            pf.insert(pts[i], i);
        }
    }
    expect_identical(gf, pf);
    std::filesystem::remove(path);
}

TEST(BackendEquivalence, Insert2dMidpoint) {
    run_case<2>(SplitPolicy::kMidpoint, false, 3000, 41);
}

TEST(BackendEquivalence, Insert2dMedian) {
    run_case<2>(SplitPolicy::kMedian, false, 3000, 42);
}

TEST(BackendEquivalence, Insert3dMidpoint) {
    run_case<3>(SplitPolicy::kMidpoint, false, 4000, 43);
}

TEST(BackendEquivalence, Insert3dMedian) {
    run_case<3>(SplitPolicy::kMedian, false, 4000, 44);
}

TEST(BackendEquivalence, BulkLoad2dMidpoint) {
    run_case<2>(SplitPolicy::kMidpoint, true, 5000, 45);
}

TEST(BackendEquivalence, BulkLoad3dMedian) {
    run_case<3>(SplitPolicy::kMedian, true, 5000, 46);
}

TEST(BackendEquivalence, InsertThenEraseStaysIdentical) {
    const auto path = test::unique_temp_path("pgf_backend_equiv");
    Rect<2> domain{{{0.0, 0.0}}, {{1.0, 1.0}}};
    PagedGridFile<2>::Config pcfg;
    pcfg.page_size = 256;
    PagedGridFile<2> pf(path.string(), domain, pcfg);
    GridFile<2>::Config mcfg;
    mcfg.bucket_capacity = pf.capacity();
    GridFile<2> gf(domain, mcfg);

    const auto pts = random_points<2>(1500, 47);
    for (std::size_t i = 0; i < pts.size(); ++i) {
        gf.insert(pts[i], i);
        pf.insert(pts[i], i);
    }
    for (std::size_t i = 0; i < pts.size(); i += 3) {
        ASSERT_TRUE(gf.erase(pts[i], i));
        ASSERT_TRUE(pf.erase(pts[i], i));
    }
    expect_identical(gf, pf);
    std::filesystem::remove(path);
}

}  // namespace
}  // namespace pgf
