// Replacement-policy unit tests.
//
// The load-bearing test is the golden trace: the default-config pool must
// reproduce the *exact* eviction/writeback sequence of the historical
// built-in LRU pool (modeled here verbatim from the pre-policy
// implementation) on a randomized fetch/mark-dirty trace — resident set
// and all four counters compared after every operation. The policy
// refactor is allowed to change nothing for existing callers.
//
// The LRU-K / CLOCK / 2Q tests script small access sequences against the
// Replacer interface directly and assert the victim choices the
// literature prescribes; the prefetch tests drive BufferPool::prefetch
// and check the first-eviction class, the no-self-cannibalization cap,
// and the counter protocol.
#include "pgf/storage/replacement.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <unordered_map>
#include <vector>

#include "pgf/storage/buffer_pool.hpp"
#include "pgf/storage/page_file.hpp"
#include "pgf/util/rng.hpp"
#include "temp_path.hpp"

namespace pgf {
namespace {

TEST(ReplacementPolicyTag, RoundTripsAndAliases) {
    for (ReplacementPolicy p :
         {ReplacementPolicy::kLru, ReplacementPolicy::kLruK,
          ReplacementPolicy::kClock, ReplacementPolicy::kTwoQ,
          ReplacementPolicy::kLfu}) {
        auto parsed = parse_policy(to_string(p));
        ASSERT_TRUE(parsed.has_value()) << to_string(p);
        EXPECT_EQ(*parsed, p);
    }
    EXPECT_EQ(parse_policy("lruk"), ReplacementPolicy::kLruK);
    EXPECT_EQ(parse_policy("lru2"), ReplacementPolicy::kLruK);
    EXPECT_EQ(parse_policy("twoq"), ReplacementPolicy::kTwoQ);
    EXPECT_FALSE(parse_policy("mru").has_value());
    EXPECT_FALSE(parse_policy("").has_value());
}

// ------------------------------------------------- golden LRU trace --

/// Verbatim model of the pre-policy BufferPool: free-frame-first scan,
/// then minimum last_use among unpinned frames; last_use = ++clock_ on
/// hit, miss fill and allocate; writeback on dirty eviction. The trace
/// below keeps pins at zero (fetch-and-release), so pin handling needs no
/// modeling.
class HistoricalLruPool {
public:
    explicit HistoricalLruPool(std::size_t capacity) : frames_(capacity) {}

    void fetch(std::uint64_t id, bool dirty) {
        auto it = table_.find(id);
        if (it != table_.end()) {
            ++hits;
            frames_[it->second].last_use = ++clock_;
            frames_[it->second].dirty |= dirty;
            return;
        }
        ++misses;
        std::size_t frame = grab_frame();
        Frame& f = frames_[frame];
        f.page = id;
        f.last_use = ++clock_;
        f.dirty = dirty;
        f.in_use = true;
        table_[id] = frame;
    }

    std::vector<std::uint64_t> resident() const {
        std::vector<std::uint64_t> pages;
        for (const auto& [page, frame] : table_) pages.push_back(page);
        std::sort(pages.begin(), pages.end());
        return pages;
    }

    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;

private:
    struct Frame {
        std::uint64_t page = 0;
        std::uint64_t last_use = 0;
        bool dirty = false;
        bool in_use = false;
    };

    std::size_t grab_frame() {
        for (std::size_t i = 0; i < frames_.size(); ++i) {
            if (!frames_[i].in_use) return i;
        }
        std::size_t victim = frames_.size();
        for (std::size_t i = 0; i < frames_.size(); ++i) {
            if (victim == frames_.size() ||
                frames_[i].last_use < frames_[victim].last_use) {
                victim = i;
            }
        }
        if (frames_[victim].dirty) ++writebacks;
        table_.erase(frames_[victim].page);
        frames_[victim].in_use = false;
        frames_[victim].dirty = false;
        ++evictions;
        return victim;
    }

    std::vector<Frame> frames_;
    std::unordered_map<std::uint64_t, std::size_t> table_;
    std::uint64_t clock_ = 0;
};

TEST(GoldenLruTrace, DefaultPoolMatchesHistoricalEvictionSequence) {
    const auto path = test::unique_temp_path("pgf_replacement_golden");
    constexpr std::size_t kCapacity = 4;
    constexpr std::uint32_t kPages = 11;
    constexpr int kOps = 3000;
    {
        auto pf = PageFile::create(path.string(), 64);
        for (std::uint64_t p = 0; p < kPages; ++p) pf.allocate();

        BufferPool pool(pf, kCapacity);  // default config == historical LRU
        HistoricalLruPool model(kCapacity);
        Rng rng(20240807);
        for (int op = 0; op < kOps; ++op) {
            // Mild skew so hits, misses and dirty evictions all occur.
            const std::uint64_t id = rng.below(2) == 0
                                         ? rng.below(3)
                                         : rng.below(kPages);
            const bool dirty = rng.below(4) == 0;
            {
                auto ref = pool.fetch(id);
                if (dirty) ref.mark_dirty();
            }
            model.fetch(id, dirty);
            ASSERT_EQ(pool.resident_pages(), model.resident())
                << "resident set diverged at op " << op;
        }
        EXPECT_EQ(pool.hits(), model.hits);
        EXPECT_EQ(pool.misses(), model.misses);
        EXPECT_EQ(pool.evictions(), model.evictions);
        EXPECT_EQ(pool.writebacks(), model.writebacks);
        EXPECT_EQ(pool.prefetch_issued(), 0u);
        EXPECT_EQ(pool.prefetch_hits(), 0u);
    }
    std::filesystem::remove(path);
}

// --------------------------------------------- policy victim scripts --

/// Drives a Replacer directly (holding a latch, as the pool would) and
/// returns victim() over an all-evictable mask of `capacity` frames.
class ReplacerScript {
public:
    explicit ReplacerScript(std::unique_ptr<Replacer> policy,
                            std::size_t capacity)
        : policy_(std::move(policy)), evictable_(capacity, true) {}

    void insert(std::size_t frame, std::uint64_t page) {
        MutexLock lock(latch_);
        policy_->on_insert(frame, page, latch_);
    }
    void access(std::size_t frame) {
        MutexLock lock(latch_);
        policy_->on_access(frame, latch_);
    }
    std::size_t victim() {
        MutexLock lock(latch_);
        return policy_->victim(EvictableView(evictable_), latch_);
    }
    /// victim() with only `allowed` eligible.
    std::size_t victim_among(const std::vector<bool>& allowed) {
        MutexLock lock(latch_);
        return policy_->victim(EvictableView(allowed), latch_);
    }
    void evict(std::size_t frame, std::uint64_t page) {
        MutexLock lock(latch_);
        policy_->on_evict(frame, page, latch_);
    }
    /// Full eviction turn: ask for the victim, notify, reuse the frame
    /// for `page`; returns the victim frame.
    std::size_t replace_with(std::uint64_t page,
                             std::uint64_t victim_page) {
        const std::size_t v = victim();
        evict(v, victim_page);
        insert(v, page);
        return v;
    }

private:
    Mutex latch_;
    std::unique_ptr<Replacer> policy_;
    std::vector<bool> evictable_;
};

TEST(LruKReplacer, InfiniteDistanceFramesGoFirstThenOldestKth) {
    ReplacerScript s(
        make_replacer({ReplacementPolicy::kLruK, 2}, 3), 3);
    // stamps:            frame 0: 1     frame 1: 2     frame 2: 3
    s.insert(0, 10);
    s.insert(1, 11);
    s.insert(2, 12);
    // frame 0: +4,5 (full history 4,5); frame 1: +6 (full 2,6);
    // frame 2 stays at one access = infinite backward-K distance.
    s.access(0);
    s.access(0);
    s.access(1);
    EXPECT_EQ(s.victim(), 2u) << "single-access frame must go first";

    // All infinite: LRU by most-recent access among them. frame 2 (stamp
    // 3) is older than a freshly inserted frame.
    ReplacerScript t(
        make_replacer({ReplacementPolicy::kLruK, 3}, 3), 3);
    t.insert(0, 10);  // stamp 1
    t.insert(1, 11);  // stamp 2
    t.insert(2, 12);  // stamp 3
    EXPECT_EQ(t.victim(), 0u);
    t.access(0);  // stamp 4: frame 0 now most recently touched
    EXPECT_EQ(t.victim(), 1u);

    // Full histories compete on the K-th most recent (oldest retained):
    // frame 0 history {4,5}, frame 1 history {2,6} -> frame 1's Kth (2)
    // is older, so with frame 2 excluded frame 1 loses.
    std::vector<bool> no2{true, true, false};
    EXPECT_EQ(s.victim_among(no2), 1u);
    // A hot burst on frame 1 (history {7,8}) makes frame 0's Kth (4) the
    // oldest.
    s.access(1);
    s.access(1);
    EXPECT_EQ(s.victim_among(no2), 0u);
}

TEST(ClockReplacer, SecondChanceSweepClearsBitsThenEvicts) {
    ReplacerScript s(make_replacer({ReplacementPolicy::kClock}, 3), 3);
    s.insert(0, 10);
    s.insert(1, 11);
    s.insert(2, 12);
    // All referenced: the hand clears 0,1,2 on the first sweep and evicts
    // frame 0 on the second.
    EXPECT_EQ(s.victim(), 0u);
    s.evict(0, 10);
    s.insert(0, 13);  // frame 0 re-referenced, hand now at 1
    // Frames 1,2 have clear bits: the hand (at 1) evicts 1 immediately.
    EXPECT_EQ(s.victim(), 1u);
    s.evict(1, 11);
    s.insert(1, 14);
    // Hand at 2, bit clear -> 2; but a fresh access sets 2's bit, so the
    // hand clears it, then evicts 0? No: 0 was re-inserted (bit set), so
    // sweep order from 2: clear 2, clear 0, clear 1, evict 2.
    s.access(2);
    EXPECT_EQ(s.victim(), 2u);

    // Pinned frames are skipped without losing their reference bit.
    ReplacerScript t(make_replacer({ReplacementPolicy::kClock}, 2), 2);
    t.insert(0, 20);
    t.insert(1, 21);
    std::vector<bool> only1{false, true};
    EXPECT_EQ(t.victim_among(only1), 1u);
}

TEST(TwoQReplacer, GhostPromotionAndScanResistance) {
    // Capacity 4 -> A1in target 1, so repeated-touch pages promote via
    // the ghost list while single-touch scan pages churn through A1in.
    ReplacerScript s(make_replacer({ReplacementPolicy::kTwoQ}, 4), 4);
    s.insert(0, 100);  // A1
    s.insert(1, 101);  // A1
    // A1 (2 frames) over target (1): FIFO front of A1 is frame 0.
    EXPECT_EQ(s.victim(), 0u);
    s.evict(0, 100);   // page 100 -> ghost
    s.insert(0, 102);  // A1: {1:101, 0:102}
    // Re-fetch of ghost page 100 enters Am directly (proven reuse).
    EXPECT_EQ(s.victim(), 1u);
    s.evict(1, 101);
    s.insert(1, 100);  // Am: {1:100}
    s.insert(2, 103);  // A1: {0:102, 2:103}
    s.insert(3, 104);  // A1: {0:102, 2:103, 3:104}
    // A1 over target: scan-style single-touch pages are the victims, in
    // FIFO order, while the Am page survives untouched.
    EXPECT_EQ(s.replace_with(105, 102), 0u);  // evict 102 (A1 front)
    EXPECT_EQ(s.replace_with(106, 103), 2u);  // evict 103
    // Am hits refresh LRU order but never move a page back to A1.
    s.access(1);
    EXPECT_EQ(s.replace_with(107, 104), 3u);  // still A1 churn, Am safe
    // Only when A1 is within target does Am's LRU frame get evicted.
    std::vector<bool> only_am{false, true, false, false};
    EXPECT_EQ(s.victim_among(only_am), 1u);
}

TEST(LfuReplacer, FrequencyDecidesWithLruTieBreakAndResetOnEvict) {
    ReplacerScript s(make_replacer({ReplacementPolicy::kLfu}, 3), 3);
    s.insert(0, 10);  // count 1, stamp 1
    s.insert(1, 11);  // count 1, stamp 2
    s.insert(2, 12);  // count 1, stamp 3
    // All counts equal: LRU tie-break picks the oldest stamp.
    EXPECT_EQ(s.victim(), 0u);
    s.access(0);  // count 2, stamp 4
    s.access(2);  // count 2, stamp 5
    // Frame 1 is now strictly least frequent despite a newer stamp than 0.
    EXPECT_EQ(s.victim(), 1u);
    s.access(1);  // count 2, stamp 6: three-way count tie again
    EXPECT_EQ(s.victim(), 0u) << "tie falls back to the oldest stamp";

    // Eviction resets the frequency: a once-hot frame re-enters at count
    // 1 and loses to moderately used survivors.
    s.access(0);
    s.access(0);          // frame 0: count 4
    EXPECT_EQ(s.victim(), 2u);
    s.evict(2, 12);
    s.insert(2, 13);      // count back to 1
    s.access(2);          // count 2, same as frame 1
    // Frame 1 (count 2, stamp 6) vs frame 2 (count 2, newer stamp).
    EXPECT_EQ(s.victim(), 1u);

    // Ineligible frames are skipped even when least frequent.
    std::vector<bool> no1{true, false, true};
    EXPECT_EQ(s.victim_among(no1), 2u);
}

// ------------------------------------------------------ prefetch --

class PrefetchTest : public ::testing::Test {
protected:
    std::filesystem::path path_ =
        test::unique_temp_path("pgf_replacement_prefetch");

    void TearDown() override { std::filesystem::remove(path_); }

    /// Pages 0..count-1 filled with a recognizable byte pattern.
    PageFile make_file(std::uint64_t count) {
        auto pf = PageFile::create(path_.string(), 64);
        std::vector<std::byte> raw(64);
        for (std::uint64_t p = 0; p < count; ++p) {
            pf.allocate();
            raw.assign(64, static_cast<std::byte>(p & 0xff));
            pf.write(p, raw);
        }
        return pf;
    }
};

TEST_F(PrefetchTest, StagesPagesCountsIssuesAndHits) {
    auto pf = make_file(6);
    BufferPool pool(pf, 4);
    const std::vector<std::uint64_t> block{0, 1, 2};
    pool.prefetch(block);
    EXPECT_EQ(pool.prefetch_issued(), 3u);
    EXPECT_EQ(pool.resident(), 3u);
    EXPECT_EQ(pool.pinned_frames(), 0u);  // staging never pins
    EXPECT_EQ(pool.hits(), 0u);           // ...and is no demand access
    EXPECT_EQ(pool.misses(), 0u);

    // Re-prefetch of resident pages is a no-op (skip, don't re-read).
    pool.prefetch(block);
    EXPECT_EQ(pool.prefetch_issued(), 3u);

    // Demand fetch of a staged page: a pool hit AND a prefetch hit, with
    // the staged bytes served verbatim.
    {
        auto ref = pool.fetch(1);
        EXPECT_EQ(ref.data()[0], static_cast<std::byte>(1));
    }
    EXPECT_EQ(pool.hits(), 1u);
    EXPECT_EQ(pool.prefetch_hits(), 1u);
    // Second fetch of the same page: a plain hit (graduated frame).
    { auto ref = pool.fetch(1); }
    EXPECT_EQ(pool.hits(), 2u);
    EXPECT_EQ(pool.prefetch_hits(), 1u);
}

TEST_F(PrefetchTest, UnusedPrefetchesAreTheFirstEvictionClassFifo) {
    auto pf = make_file(8);
    BufferPool pool(pf, 4);
    // Two demand pages with recency, then two staged pages fill the pool.
    { auto ref = pool.fetch(0); }
    { auto ref = pool.fetch(1); }
    pool.prefetch(std::vector<std::uint64_t>{2, 3});
    EXPECT_EQ(pool.resident(), 4u);

    // A demand miss evicts the *oldest unused prefetch* (page 2), not the
    // LRU demand page 0.
    { auto ref = pool.fetch(4); }
    auto resident = pool.resident_pages();
    EXPECT_EQ(resident, (std::vector<std::uint64_t>{0, 1, 3, 4}));

    // Consuming a staged page graduates it: the next miss then takes the
    // true LRU demand page (0), because no unused prefetch remains.
    { auto ref = pool.fetch(3); }
    EXPECT_EQ(pool.prefetch_hits(), 1u);
    { auto ref = pool.fetch(5); }
    resident = pool.resident_pages();
    EXPECT_EQ(resident, (std::vector<std::uint64_t>{1, 3, 4, 5}));
}

TEST_F(PrefetchTest, PrefetchNeverEvictsAnotherUnusedPrefetch) {
    auto pf = make_file(8);
    BufferPool pool(pf, 3);
    { auto ref = pool.fetch(0); }  // one demand page
    // Staging 4 pages into 3 frames: pages 1,2 take the free frames, page
    // 3 may displace the demand page, and page 4 must be dropped — the
    // only remaining frames hold unused prefetches.
    pool.prefetch(std::vector<std::uint64_t>{1, 2, 3, 4});
    EXPECT_EQ(pool.prefetch_issued(), 3u);
    auto resident = pool.resident_pages();
    EXPECT_EQ(resident, (std::vector<std::uint64_t>{1, 2, 3}));

    // With every frame holding an unused prefetch, further staging is a
    // clean no-op...
    pool.prefetch(std::vector<std::uint64_t>{5, 6});
    EXPECT_EQ(pool.prefetch_issued(), 3u);
    // ...but demand misses still steal staged frames freely (FIFO).
    { auto ref = pool.fetch(7); }
    EXPECT_EQ(pool.misses(), 2u);
    resident = pool.resident_pages();
    EXPECT_EQ(resident, (std::vector<std::uint64_t>{2, 3, 7}));
}

TEST_F(PrefetchTest, PinnedFramesStopStagingWithoutThrowing)
{
    auto pf = make_file(6);
    BufferPool pool(pf, 2);
    auto pinned0 = pool.fetch(0);
    auto pinned1 = pool.fetch(1);
    // Every frame pinned: fetch would throw, prefetch must simply stop.
    EXPECT_NO_THROW(
        pool.prefetch(std::vector<std::uint64_t>{2, 3}));
    EXPECT_EQ(pool.prefetch_issued(), 0u);
    EXPECT_EQ(pool.resident_pages(),
              (std::vector<std::uint64_t>{0, 1}));
}

}  // namespace
}  // namespace pgf
