#include "pgf/storage/serializer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <limits>

#include "pgf/util/rng.hpp"
#include "temp_path.hpp"

namespace pgf {
namespace {

class SerializerTest : public ::testing::Test {
protected:
    std::filesystem::path path_ = test::unique_temp_path("pgf_serializer_test");

    void TearDown() override { std::filesystem::remove(path_); }
};

TEST_F(SerializerTest, ScalarRoundTrip) {
    auto pf = PageFile::create(path_.string(), 64);
    BufferPool pool(pf, 4);
    ByteWriter w(pool);
    w.put_u8(0xAB);
    w.put_u32(0xDEADBEEF);
    w.put_u64(0x0123456789ABCDEFULL);
    w.put_f64(-12345.6789);
    w.put_string("grid files");
    w.finish();

    ByteReader r(pool, w.first_page());
    EXPECT_EQ(r.get_u8(), 0xAB);
    EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFULL);
    EXPECT_DOUBLE_EQ(r.get_f64(), -12345.6789);
    EXPECT_EQ(r.get_string(), "grid files");
    EXPECT_EQ(r.bytes_read(), w.bytes_written());
}

TEST_F(SerializerTest, SpansManyPages) {
    auto pf = PageFile::create(path_.string(), 64);
    BufferPool pool(pf, 3);  // smaller than the stream: forces eviction
    ByteWriter w(pool);
    Rng rng(5);
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 500; ++i) {
        values.push_back(rng.next_u64());
        w.put_u64(values.back());
    }
    w.finish();
    EXPECT_GT(pf.page_count(), 50u);  // 4000 bytes over 64-byte pages

    ByteReader r(pool, w.first_page());
    for (std::uint64_t v : values) {
        ASSERT_EQ(r.get_u64(), v);
    }
}

TEST_F(SerializerTest, SpecialFloatValues) {
    auto pf = PageFile::create(path_.string(), 64);
    BufferPool pool(pf, 4);
    ByteWriter w(pool);
    w.put_f64(0.0);
    w.put_f64(-0.0);
    w.put_f64(std::numeric_limits<double>::infinity());
    w.put_f64(std::numeric_limits<double>::denorm_min());
    w.put_f64(std::numeric_limits<double>::quiet_NaN());
    w.finish();
    ByteReader r(pool, w.first_page());
    EXPECT_EQ(r.get_f64(), 0.0);
    double neg_zero = r.get_f64();
    EXPECT_EQ(neg_zero, 0.0);
    EXPECT_TRUE(std::signbit(neg_zero));
    EXPECT_TRUE(std::isinf(r.get_f64()));
    EXPECT_EQ(r.get_f64(), std::numeric_limits<double>::denorm_min());
    EXPECT_TRUE(std::isnan(r.get_f64()));
}

TEST_F(SerializerTest, EmptyStringAndZeroValues) {
    auto pf = PageFile::create(path_.string(), 64);
    BufferPool pool(pf, 4);
    ByteWriter w(pool);
    w.put_string("");
    w.put_u32(0);
    w.finish();
    ByteReader r(pool, w.first_page());
    EXPECT_EQ(r.get_string(), "");
    EXPECT_EQ(r.get_u32(), 0u);
}

TEST_F(SerializerTest, WriteAfterFinishThrows) {
    auto pf = PageFile::create(path_.string(), 64);
    BufferPool pool(pf, 4);
    ByteWriter w(pool);
    w.put_u8(1);
    w.finish();
    EXPECT_THROW(w.put_u8(2), CheckError);
}

TEST_F(SerializerTest, StreamPersistsAcrossReopen) {
    std::uint64_t first_page;
    {
        auto pf = PageFile::create(path_.string(), 64);
        BufferPool pool(pf, 4);
        ByteWriter w(pool);
        first_page = w.first_page();
        w.put_string("persistent payload");
        w.put_u64(777);
        w.finish();
        pf.sync();
    }
    auto pf = PageFile::open(path_.string());
    BufferPool pool(pf, 4);
    ByteReader r(pool, first_page);
    EXPECT_EQ(r.get_string(), "persistent payload");
    EXPECT_EQ(r.get_u64(), 777u);
}

}  // namespace
}  // namespace pgf
