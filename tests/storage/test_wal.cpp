// Write-ahead log unit tests: append/flush/reopen round trips, LSN
// discipline, torn-tail and corruption detection, and the commit-boundary
// bookkeeping recovery truncates at.
#include "pgf/storage/wal.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <vector>

#include "pgf/util/check.hpp"
#include "temp_path.hpp"

namespace pgf {
namespace {

class WalTest : public ::testing::Test {
protected:
    std::filesystem::path path_ = test::unique_temp_path("pgf_wal_test");

    void TearDown() override { std::filesystem::remove(path_); }

    std::vector<std::byte> body(std::initializer_list<int> xs) {
        std::vector<std::byte> out;
        for (int x : xs) out.push_back(static_cast<std::byte>(x));
        return out;
    }
};

TEST_F(WalTest, AppendFlushReopenRoundTrip) {
    {
        auto wal = WriteAheadLog::create(path_.string());
        EXPECT_EQ(wal->last_lsn(), 0u);
        EXPECT_EQ(wal->durable_lsn(), 0u);
        EXPECT_EQ(wal->append(WalRecordKind::kGenesis, body({1, 2, 3})), 1u);
        EXPECT_EQ(wal->append(WalRecordKind::kPage, body({9, 9})), 2u);
        EXPECT_EQ(wal->append(WalRecordKind::kCommit, {}), 3u);
        EXPECT_EQ(wal->last_lsn(), 3u);
        EXPECT_EQ(wal->durable_lsn(), 0u);  // still buffered
        wal->flush();
        EXPECT_EQ(wal->durable_lsn(), 3u);
        EXPECT_EQ(wal->stats().records, 3u);
        EXPECT_GE(wal->stats().flushes, 1u);
    }

    WalReader reader(path_.string());
    const auto scan = reader.scan();
    EXPECT_EQ(scan.records, 3u);
    EXPECT_EQ(scan.last_lsn, 3u);
    EXPECT_EQ(scan.last_commit_lsn, 3u);
    EXPECT_EQ(scan.commit_bytes, scan.valid_bytes);
    EXPECT_TRUE(scan.has_genesis);

    WalReader::Record rec;
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec.lsn, 1u);
    EXPECT_EQ(rec.kind, WalRecordKind::kGenesis);
    EXPECT_EQ(rec.body, body({1, 2, 3}));
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec.lsn, 2u);
    EXPECT_EQ(rec.body, body({9, 9}));
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec.kind, WalRecordKind::kCommit);
    EXPECT_TRUE(rec.body.empty());
    EXPECT_FALSE(reader.next(rec));
    reader.rewind();
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec.lsn, 1u);

    // Reopen continues the LSN sequence and is immediately durable.
    auto wal = WriteAheadLog::open(path_.string());
    EXPECT_EQ(wal->last_lsn(), 3u);
    EXPECT_EQ(wal->durable_lsn(), 3u);
    EXPECT_EQ(wal->append(WalRecordKind::kCommit, {}), 4u);
}

TEST_F(WalTest, DestructorFlushesBufferedRecords) {
    {
        auto wal = WriteAheadLog::create(path_.string());
        wal->append(WalRecordKind::kGenesis, body({7}));
        // no explicit flush
    }
    WalReader reader(path_.string());
    EXPECT_EQ(reader.scan().records, 1u);
}

TEST_F(WalTest, FlushUpToIsANoOpWhenAlreadyDurable) {
    auto wal = WriteAheadLog::create(path_.string());
    wal->append(WalRecordKind::kGenesis, body({1}));
    wal->append(WalRecordKind::kCommit, {});
    wal->flush_up_to(2);
    EXPECT_EQ(wal->durable_lsn(), 2u);
    const auto flushes = wal->stats().flushes;
    wal->flush_up_to(1);  // already durable: must not touch the disk
    wal->flush_up_to(2);
    EXPECT_EQ(wal->stats().flushes, flushes);
}

TEST_F(WalTest, TornTailIsDetectedAndTruncatedOnOpen) {
    std::uint64_t full_size = 0;
    {
        auto wal = WriteAheadLog::create(path_.string());
        wal->append(WalRecordKind::kGenesis, body({1, 2, 3, 4}));
        wal->append(WalRecordKind::kCommit, {});
        wal->append(WalRecordKind::kPage, body({5, 6, 7, 8, 9, 10}));
        wal->flush();
    }
    full_size = std::filesystem::file_size(path_);

    // Chop mid-way through the last record: the scan must stop at LSN 2.
    std::filesystem::resize_file(path_, full_size - 3);
    {
        WalReader reader(path_.string());
        const auto scan = reader.scan();
        EXPECT_EQ(scan.records, 2u);
        EXPECT_EQ(scan.last_lsn, 2u);
        EXPECT_EQ(scan.last_commit_lsn, 2u);
        EXPECT_EQ(scan.valid_bytes, full_size - 3 - (17 + 6 - 3));
    }

    // open() truncates the torn tail for good and reuses LSN 3.
    {
        auto wal = WriteAheadLog::open(path_.string());
        EXPECT_EQ(wal->last_lsn(), 2u);
        EXPECT_EQ(wal->append(WalRecordKind::kPage, body({11})), 3u);
    }
    WalReader reader(path_.string());
    const auto scan = reader.scan();
    EXPECT_EQ(scan.records, 3u);
    EXPECT_EQ(scan.last_lsn, 3u);
}

TEST_F(WalTest, CorruptRecordEndsTheValidPrefix) {
    {
        auto wal = WriteAheadLog::create(path_.string());
        wal->append(WalRecordKind::kGenesis, body({1}));
        wal->append(WalRecordKind::kCommit, {});
        wal->append(WalRecordKind::kPage, body({2, 3, 4}));
        wal->append(WalRecordKind::kCommit, {});
        wal->flush();
    }
    // Flip a byte inside record 3's body: records 1-2 stay valid, and the
    // later (intact) commit must NOT be reachable past the corruption.
    {
        std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
        const std::uint64_t header = 16;
        const std::uint64_t rec1 = 17 + 1, rec2 = 17;
        f.seekp(static_cast<std::streamoff>(header + rec1 + rec2 + 17 + 1));
        char x = 0;
        f.write(&x, 1);  // body byte 3 -> 0
    }
    WalReader reader(path_.string());
    const auto scan = reader.scan();
    EXPECT_EQ(scan.records, 2u);
    EXPECT_EQ(scan.last_commit_lsn, 2u);
}

TEST_F(WalTest, CommitBytesTracksTheLastCommitNotTheLastRecord) {
    std::uint64_t commit_bytes = 0;
    {
        auto wal = WriteAheadLog::create(path_.string());
        wal->append(WalRecordKind::kGenesis, body({1}));
        wal->append(WalRecordKind::kCommit, {});
        wal->flush();
    }
    {
        WalReader reader(path_.string());
        commit_bytes = reader.scan().commit_bytes;
        EXPECT_EQ(commit_bytes, std::filesystem::file_size(path_));
    }
    {
        auto wal = WriteAheadLog::open(path_.string());
        wal->append(WalRecordKind::kPage, body({2, 3}));  // no commit after
        wal->flush();
    }
    WalReader reader(path_.string());
    const auto scan = reader.scan();
    EXPECT_EQ(scan.records, 3u);
    EXPECT_EQ(scan.last_commit_lsn, 2u);
    // The uncommitted suffix is valid but past the commit boundary.
    EXPECT_EQ(scan.commit_bytes, commit_bytes);
    EXPECT_GT(scan.valid_bytes, scan.commit_bytes);
}

TEST_F(WalTest, BadMagicAndMissingFileAreTypedErrors) {
    {
        std::ofstream out(path_);
        out << "certainly not a WAL";
    }
    EXPECT_THROW(WalReader(path_.string()).scan(), CheckError);
    EXPECT_THROW(WriteAheadLog::open(path_.string()), CheckError);
    EXPECT_THROW(WriteAheadLog::open("/nonexistent-dir/nope.wal"),
                 CheckError);
}

TEST_F(WalTest, EmptyLogScansCleanly) {
    { auto wal = WriteAheadLog::create(path_.string()); }
    WalReader reader(path_.string());
    const auto scan = reader.scan();
    EXPECT_EQ(scan.records, 0u);
    EXPECT_EQ(scan.last_lsn, 0u);
    EXPECT_EQ(scan.last_commit_lsn, 0u);
    EXPECT_FALSE(scan.has_genesis);
    EXPECT_EQ(scan.valid_bytes, 16u);
    EXPECT_EQ(scan.commit_bytes, 16u);
    WalReader::Record rec;
    EXPECT_FALSE(reader.next(rec));
}

}  // namespace
}  // namespace pgf
