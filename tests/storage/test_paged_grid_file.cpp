#include "pgf/storage/paged_grid_file.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>

#include "pgf/gridfile/grid_file.hpp"
#include "pgf/util/rng.hpp"
#include "temp_path.hpp"

namespace pgf {
namespace {

class PagedGridFileTest : public ::testing::Test {
protected:
    std::filesystem::path path_ = test::unique_temp_path("pgf_paged_test");
    Rect<2> domain_{{{0.0, 0.0}}, {{1.0, 1.0}}};

    void TearDown() override { std::filesystem::remove(path_); }

    PagedGridFile<2> make(std::size_t page_size = 256,
                          std::size_t pool_pages = 16) {
        PagedGridFile<2>::Config cfg;
        cfg.page_size = page_size;
        cfg.pool_pages = pool_pages;
        return PagedGridFile<2>(path_.string(), domain_, cfg);
    }
};

TEST_F(PagedGridFileTest, CapacityFollowsPageSize) {
    auto pf = make(256);
    // (256 - 16 header - 8 count) / 24 = 9 records per 2-d bucket page.
    EXPECT_EQ(pf.bucket_capacity(), 9u);
    EXPECT_EQ(pf.bucket_count(), 1u);
}

TEST_F(PagedGridFileTest, CapacityAccessorRoundTripsThroughPageSize) {
    auto pf = make(256);
    EXPECT_EQ(pf.capacity(), 9u);
    EXPECT_EQ(pf.capacity(), pf.bucket_capacity());
    // page_size_for is the least page size yielding this capacity, so a
    // memory-backend twin built with capacity() is cell-for-cell
    // comparable to this file.
    EXPECT_EQ(PagedBucketStore<2>::page_size_for(pf.capacity()), 240u);
    EXPECT_EQ(PagedBucketStore<2>::capacity_for(240), 9u);
    EXPECT_EQ(PagedBucketStore<2>::capacity_for(239), 8u);
}

TEST_F(PagedGridFileTest, InsertAndExactQueries) {
    auto pf = make();
    Rng rng(3);
    std::vector<Point<2>> pts;
    for (std::uint64_t i = 0; i < 700; ++i) {
        Point<2> p{{rng.uniform(), rng.uniform()}};
        pts.push_back(p);
        pf.insert(p, i);
    }
    EXPECT_EQ(pf.record_count(), 700u);
    EXPECT_GT(pf.bucket_count(), 40u);
    for (int t = 0; t < 60; ++t) {
        double x0 = rng.uniform(), y0 = rng.uniform();
        Rect<2> q{{{x0, y0}}, {{x0 + 0.25, y0 + 0.25}}};
        auto got = pf.query_records(q);
        std::vector<std::uint64_t> ids;
        for (const auto& r : got) ids.push_back(r.id);
        std::sort(ids.begin(), ids.end());
        std::vector<std::uint64_t> expected;
        for (std::size_t i = 0; i < pts.size(); ++i) {
            if (q.contains(pts[i])) expected.push_back(i);
        }
        ASSERT_EQ(ids, expected) << "query " << t;
    }
}

TEST_F(PagedGridFileTest, AgreesWithInMemoryGridFileStructure) {
    // Same data, same split policy, same capacity => identical structure.
    auto pf = make(256);
    GridFile<2>::Config cfg;
    cfg.bucket_capacity = pf.bucket_capacity();
    GridFile<2> gf(domain_, cfg);
    Rng rng(7);
    for (std::uint64_t i = 0; i < 500; ++i) {
        Point<2> p{{rng.uniform(), rng.uniform()}};
        pf.insert(p, i);
        gf.insert(p, i);
    }
    EXPECT_EQ(pf.bucket_count(), gf.bucket_count());
    GridStructure ps = pf.structure();
    GridStructure gs = gf.structure();
    EXPECT_NO_THROW(ps.validate());
    EXPECT_EQ(ps.shape, gs.shape);
    for (std::size_t b = 0; b < ps.bucket_count(); ++b) {
        ASSERT_EQ(ps.buckets[b].cell_lo, gs.buckets[b].cell_lo) << b;
        ASSERT_EQ(ps.buckets[b].cell_hi, gs.buckets[b].cell_hi) << b;
        ASSERT_EQ(ps.buckets[b].record_count, gs.buckets[b].record_count);
    }
}

TEST_F(PagedGridFileTest, NoBucketExceedsItsPage) {
    auto pf = make(256);
    Rng rng(11);
    for (std::uint64_t i = 0; i < 1200; ++i) {
        pf.insert({{rng.uniform() * rng.uniform(), rng.uniform()}}, i);
    }
    GridStructure gs = pf.structure();
    for (const auto& b : gs.buckets) {
        EXPECT_LE(b.record_count, pf.bucket_capacity());
    }
}

TEST_F(PagedGridFileTest, BufferPoolSeesHitsAndMisses) {
    auto pf = make(256, /*pool_pages=*/4);  // tiny pool forces eviction
    Rng rng(13);
    for (std::uint64_t i = 0; i < 800; ++i) {
        pf.insert({{rng.uniform(), rng.uniform()}}, i);
    }
    std::uint64_t evictions = pf.pool().evictions();
    EXPECT_GT(evictions, 0u);
    // A full scan fetches every bucket page: misses must rise when the
    // working set exceeds four frames.
    std::uint64_t misses_before = pf.pool().misses();
    Rect<2> all{{{0.0, 0.0}}, {{1.0, 1.0}}};
    EXPECT_EQ(pf.query_records(all).size(), 800u);
    EXPECT_GT(pf.pool().misses(), misses_before);
}

TEST_F(PagedGridFileTest, QueryBucketsMatchesRecordScan) {
    auto pf = make();
    Rng rng(17);
    for (std::uint64_t i = 0; i < 400; ++i) {
        pf.insert({{rng.uniform(), rng.uniform()}}, i);
    }
    Rect<2> q{{{0.2, 0.3}}, {{0.6, 0.7}}};
    auto buckets = pf.query_buckets(q);
    std::set<std::uint32_t> unique(buckets.begin(), buckets.end());
    EXPECT_EQ(unique.size(), buckets.size());
    // Record scan only touches listed buckets (pool fetch count check).
    std::uint64_t fetches_before = pf.pool().hits() + pf.pool().misses();
    pf.query_records(q);
    std::uint64_t fetches = pf.pool().hits() + pf.pool().misses() -
                            fetches_before;
    EXPECT_EQ(fetches, buckets.size());
}

TEST_F(PagedGridFileTest, DuplicateOverflowRejectedExplicitly) {
    auto pf = make(256);
    Point<2> p{{0.5, 0.5}};
    bool threw = false;
    // Capacity is 9; somewhere past that the duplicates must be rejected
    // with a CheckError rather than corrupting a page.
    for (std::uint64_t i = 0; i < 64 && !threw; ++i) {
        try {
            pf.insert(p, i);
        } catch (const CheckError&) {
            threw = true;
        }
    }
    EXPECT_TRUE(threw);
}

TEST_F(PagedGridFileTest, FlushPersistsPages) {
    std::uint64_t pages = 0;
    {
        auto pf = make();
        Rng rng(19);
        for (std::uint64_t i = 0; i < 300; ++i) {
            pf.insert({{rng.uniform(), rng.uniform()}}, i);
        }
        pf.flush();
        pages = pf.bucket_count();
    }
    // Every bucket page made it to disk (file has at least that many pages).
    auto file = PageFile::open(path_.string());
    EXPECT_GE(file.page_count(), pages);
}

TEST_F(PagedGridFileTest, EraseRemovesExactRecord) {
    auto pf = make();
    Point<2> p{{0.3, 0.4}};
    pf.insert(p, 1);
    pf.insert(p, 2);
    pf.insert({{0.8, 0.8}}, 3);
    EXPECT_TRUE(pf.erase(p, 1));
    EXPECT_EQ(pf.record_count(), 2u);
    EXPECT_FALSE(pf.erase(p, 1));             // already gone
    EXPECT_FALSE(pf.erase({{0.8, 0.8}}, 2));  // wrong location for id 2
    Rect<2> all{{{0.0, 0.0}}, {{1.0, 1.0}}};
    EXPECT_EQ(pf.query_records(all).size(), 2u);
}

TEST_F(PagedGridFileTest, EraseThenReinsertKeepsStructureValid) {
    auto pf = make();
    Rng rng(23);
    std::vector<Point<2>> pts;
    for (std::uint64_t i = 0; i < 300; ++i) {
        Point<2> p{{rng.uniform(), rng.uniform()}};
        pts.push_back(p);
        pf.insert(p, i);
    }
    for (std::uint64_t i = 0; i < 150; ++i) {
        ASSERT_TRUE(pf.erase(pts[i], i));
    }
    for (std::uint64_t i = 0; i < 150; ++i) {
        pf.insert(pts[i], 1000 + i);
    }
    EXPECT_EQ(pf.record_count(), 300u);
    EXPECT_NO_THROW(pf.structure().validate());
}

TEST_F(PagedGridFileTest, PartialMatchAgreesWithInMemoryGridFile) {
    auto pf = make();
    GridFile<2>::Config cfg;
    cfg.bucket_capacity = pf.bucket_capacity();
    GridFile<2> gf(domain_, cfg);
    Rng rng(29);
    for (std::uint64_t i = 0; i < 400; ++i) {
        Point<2> p{{static_cast<double>(rng.uniform_int(0, 9)) * 0.1 + 0.05,
                    rng.uniform()}};
        pf.insert(p, i);
        gf.insert(p, i);
    }
    for (int k = 0; k < 10; ++k) {
        PartialMatch<2> q;
        q.key[0] = static_cast<double>(k) * 0.1 + 0.05;
        auto paged = pf.query_records(q);
        auto mem = gf.query_records(q);
        ASSERT_EQ(paged.size(), mem.size()) << "x=" << *q.key[0];
    }
}

TEST_F(PagedGridFileTest, RejectsTinyPages) {
    PagedGridFile<2>::Config cfg;
    cfg.page_size = 72;  // (72-16-8)/24 = 2 records: allowed
    EXPECT_NO_THROW(PagedGridFile<2>(path_.string(), domain_, cfg));
    PagedGridFile<4>::Config cfg4;
    cfg4.page_size = 72;  // (72-16-8)/40 = 1 record: too small for 4-d
    Rect<4> domain4{{{0, 0, 0, 0}}, {{1, 1, 1, 1}}};
    EXPECT_THROW(PagedGridFile<4>(path_.string(), domain4, cfg4), CheckError);
}

}  // namespace
}  // namespace pgf
