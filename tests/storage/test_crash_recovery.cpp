// Crash-injection sweep for the durability layer: a deterministic insert/
// erase workload runs against a WAL-backed PagedGridFile with a fault
// injector armed to crash at the b-th durability-relevant write, for every
// budget b (or a >=100-point sample when the op count is large). After
// each injected crash the test replays the log and demands the full
// contract:
//
//   - replay_wal succeeds and the recovered file passes the deep audit;
//   - replay is idempotent — running it twice leaves the data file and the
//     log byte-for-byte identical, with zero pages rewritten on the second
//     pass;
//   - the recovered state is a committed prefix of the operation sequence:
//     record_count equals the count after exactly (durable commits - 1)
//     workload ops (the extra commit is construction's baseline).
//
// Construction itself is not crash-protected (mkfs analogy — see
// recovery.hpp), so every sweep arms the injector only after the
// constructor returns.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "pgf/analysis/paged_audit.hpp"
#include "pgf/storage/fault_injection.hpp"
#include "pgf/storage/paged_grid_file.hpp"
#include "pgf/storage/recovery.hpp"
#include "pgf/storage/wal.hpp"
#include "pgf/util/check.hpp"
#include "pgf/util/rng.hpp"
#include "temp_path.hpp"

namespace pgf {
namespace {

struct Op {
    Point<2> p;
    std::uint64_t id;
    bool insert;
};

/// Deterministic mixed workload plus the record count after each prefix.
struct Workload {
    std::vector<Op> ops;
    std::vector<std::size_t> count_after;  // count_after[k]: after k ops
};

Workload make_workload(std::size_t n_ops, std::uint64_t seed) {
    Workload w;
    Rng rng(seed);
    std::vector<std::pair<Point<2>, std::uint64_t>> live;
    std::uint64_t next_id = 0;
    w.count_after.push_back(0);
    for (std::size_t i = 0; i < n_ops; ++i) {
        const bool erase = i % 6 == 5 && !live.empty();
        if (erase) {
            const std::size_t pick =
                rng.below(static_cast<std::uint32_t>(live.size()));
            w.ops.push_back({live[pick].first, live[pick].second, false});
            live[pick] = live.back();
            live.pop_back();
        } else {
            Point<2> p{};
            p[0] = rng.uniform();
            p[1] = rng.uniform();
            w.ops.push_back({p, next_id, true});
            live.emplace_back(p, next_id);
            ++next_id;
        }
        w.count_after.push_back(live.size());
    }
    return w;
}

PagedGridFile<2>::Config durable_config(const std::string& wal_path,
                                        FaultInjector* injector) {
    PagedGridFile<2>::Config cfg;
    cfg.page_size = PagedBucketStore<2>::page_size_for(8);
    cfg.pool_pages = 6;  // tiny pool: most ops evict, maximizing crash sites
    cfg.wal_path = wal_path;
    cfg.fault_injector = injector;
    return cfg;
}

void apply_ops(PagedGridFile<2>& pf, const std::vector<Op>& ops) {
    for (const auto& op : ops) {
        if (op.insert) {
            pf.insert(op.p, op.id);
        } else {
            pf.erase(op.p, op.id);
        }
    }
}

std::vector<char> file_bytes(const std::filesystem::path& p) {
    std::ifstream in(p, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

std::uint64_t count_commits(const std::string& wal_path) {
    WalReader reader(wal_path);
    reader.scan();
    reader.rewind();
    std::uint64_t commits = 0;
    WalReader::Record rec;
    while (reader.next(rec)) {
        if (rec.kind == WalRecordKind::kCommit) ++commits;
    }
    return commits;
}

class CrashRecoveryTest : public ::testing::Test {
protected:
    std::filesystem::path data_ = test::unique_temp_path("pgf_crash_data");
    std::filesystem::path wal_ = test::unique_temp_path("pgf_crash_wal");

    void TearDown() override {
        std::filesystem::remove(data_);
        std::filesystem::remove(wal_);
    }

    void fresh_files() {
        std::filesystem::remove(data_);
        std::filesystem::remove(wal_);
    }

    /// Runs the workload with a crash armed at `budget` post-construction
    /// writes. Returns true when the crash fired (it must for budgets below
    /// the uninjured op count).
    bool run_until_crash(const Workload& w, std::uint64_t budget) {
        fresh_files();
        FaultInjector injector;
        auto cfg = durable_config(wal_.string(), &injector);
        PagedGridFile<2> pf(data_.string(), domain_, cfg);
        injector.arm(budget);
        try {
            apply_ops(pf, w.ops);
            pf.flush();
        } catch (const CrashError&) {
            return true;
        }
        return injector.crashed();
    }

    /// The full post-crash contract for the current data_/wal_ pair.
    void expect_recoverable(const Workload& w, std::uint64_t budget) {
        // Replay twice through the low-level entry point: byte idempotency.
        {
            ReplayStats first;
            {
                auto rec = replay_wal<2>(data_.string(), wal_.string());
                first = rec.stats;
            }
            const auto data_after_first = file_bytes(data_);
            const auto wal_after_first = file_bytes(wal_);
            {
                auto rec = replay_wal<2>(data_.string(), wal_.string());
                EXPECT_EQ(rec.stats.pages_replayed, 0u)
                    << "budget " << budget
                    << ": second replay rewrote pages";
                EXPECT_EQ(rec.stats.last_commit_lsn, first.last_commit_lsn);
            }
            EXPECT_EQ(file_bytes(data_), data_after_first)
                << "budget " << budget << ": data file not idempotent";
            EXPECT_EQ(file_bytes(wal_), wal_after_first)
                << "budget " << budget << ": wal not idempotent";
        }

        // Recovered grid passes the deep audit and lands on a committed
        // prefix of the op sequence.
        PagedGridFile<2>::Config cfg = durable_config(wal_.string(), nullptr);
        PagedGridFile<2> pf(PagedGridFile<2>::RecoverTag{}, data_.string(),
                            cfg);
        const auto report =
            analysis::audit_paged_grid_file(
                pf, analysis::ValidationLevel::kDeep);
        EXPECT_TRUE(report.ok())
            << "budget " << budget << ":\n" << report.summary();

        const std::uint64_t commits = count_commits(wal_.string());
        ASSERT_GE(commits, 1u) << "budget " << budget;
        const std::size_t k = std::min<std::size_t>(
            static_cast<std::size_t>(commits - 1), w.ops.size());
        EXPECT_EQ(pf.record_count(), w.count_after[k])
            << "budget " << budget << ": not the state after " << k
            << " ops";
    }

    Rect<2> domain_{{{0.0, 0.0}}, {{1.0, 1.0}}};
};

TEST_F(CrashRecoveryTest, SweepEveryInjectionPointRecovers) {
    const Workload w = make_workload(220, 77);

    // Uninjured run counts the durability-relevant writes (the injection
    // points). The count-only injector never fires at kUnlimited.
    std::uint64_t total_ops = 0;
    std::size_t final_count = 0;
    {
        fresh_files();
        FaultInjector counter;
        auto cfg = durable_config(wal_.string(), &counter);
        PagedGridFile<2> pf(data_.string(), domain_, cfg);
        const std::uint64_t base = counter.ops_seen();
        apply_ops(pf, w.ops);
        pf.flush();
        total_ops = counter.ops_seen() - base;
        final_count = pf.record_count();
        EXPECT_FALSE(counter.crashed());
    }
    ASSERT_GE(total_ops, 100u)
        << "workload too small to exercise 100 injection points";
    EXPECT_EQ(final_count, w.count_after.back());

    // Sweep budgets: every early point (construction aftermath, first
    // splits), every late point (final flush), and a randomized sample of
    // the middle — at least 100 distinct crash sites total.
    std::set<std::uint64_t> picked;
    for (std::uint64_t b = 0; b < std::min<std::uint64_t>(30, total_ops); ++b)
        picked.insert(b);
    for (std::uint64_t b = total_ops > 20 ? total_ops - 20 : 0;
         b < total_ops; ++b)
        picked.insert(b);
    Rng rng(2026);
    const std::uint64_t target = std::min<std::uint64_t>(110, total_ops);
    while (picked.size() < target) {
        picked.insert(rng.below(static_cast<std::uint32_t>(total_ops)));
    }
    const std::vector<std::uint64_t> budgets(picked.begin(), picked.end());
    ASSERT_GE(budgets.size(), 100u);

    for (const std::uint64_t b : budgets) {
        ASSERT_TRUE(run_until_crash(w, b)) << "budget " << b;
        expect_recoverable(w, b);
        if (::testing::Test::HasFailure()) {
            FAIL() << "stopping sweep at budget " << b;
        }
    }
}

TEST_F(CrashRecoveryTest, SweepCoversTheFirstSplitDensely) {
    // Twelve inserts (two ops are erases) overflow the first capacity-8
    // bucket: every budget in this micro-workload lands
    // construction-adjacent or inside the first splits (create+split+refine
    // records, two page rewrites). Sweep all of them.
    const Workload w = make_workload(14, 5);
    std::uint64_t total_ops = 0;
    {
        fresh_files();
        FaultInjector counter;
        auto cfg = durable_config(wal_.string(), &counter);
        PagedGridFile<2> pf(data_.string(), domain_, cfg);
        const std::uint64_t base = counter.ops_seen();
        apply_ops(pf, w.ops);
        pf.flush();
        EXPECT_GT(pf.bucket_count(), 1u) << "workload never split";
        total_ops = counter.ops_seen() - base;
    }
    for (std::uint64_t b = 0; b < total_ops; ++b) {
        ASSERT_TRUE(run_until_crash(w, b)) << "budget " << b;
        expect_recoverable(w, b);
        if (::testing::Test::HasFailure()) {
            FAIL() << "stopping sweep at budget " << b;
        }
    }
}

TEST_F(CrashRecoveryTest, RecoveredFileAcceptsNewOpsAndRecoversAgain) {
    const Workload w = make_workload(120, 9);
    ASSERT_TRUE(run_until_crash(w, 40));

    std::size_t count_after_recovery = 0;
    {
        auto cfg = durable_config(wal_.string(), nullptr);
        PagedGridFile<2> pf(PagedGridFile<2>::RecoverTag{}, data_.string(),
                            cfg);
        count_after_recovery = pf.record_count();
        // The reopened log keeps journaling: run more inserts, flush, and
        // the *next* recovery must see them.
        Rng rng(13);
        for (std::uint64_t id = 10'000; id < 10'025; ++id) {
            Point<2> p{};
            p[0] = rng.uniform();
            p[1] = rng.uniform();
            pf.insert(p, id);
        }
        pf.flush();
    }
    auto cfg = durable_config(wal_.string(), nullptr);
    PagedGridFile<2> pf(PagedGridFile<2>::RecoverTag{}, data_.string(), cfg);
    EXPECT_EQ(pf.record_count(), count_after_recovery + 25);
    const auto report =
        analysis::audit_paged_grid_file(pf,
                                        analysis::ValidationLevel::kDeep);
    EXPECT_TRUE(report.ok()) << report.summary();
}

TEST_F(CrashRecoveryTest, ProbeDimsReadsGenesisAndRejectsJunk) {
    {
        FaultInjector counter;
        auto cfg = durable_config(wal_.string(), &counter);
        PagedGridFile<2> pf(data_.string(), domain_, cfg);
    }
    EXPECT_EQ(wal_probe_dims(wal_.string()), 2u);

    // A log whose committed prefix lacks genesis (empty log) is a typed
    // error, as is replaying it.
    fresh_files();
    { auto wal = WriteAheadLog::create(wal_.string()); }
    EXPECT_THROW(wal_probe_dims(wal_.string()), CheckError);
    EXPECT_THROW(replay_wal<2>(data_.string(), wal_.string()), CheckError);
}

TEST_F(CrashRecoveryTest, ReplayNeedsACommitMarker) {
    // Genesis alone (no commit) is not a recoverable state: nothing was
    // ever durable, and replay must say so rather than invent a grid.
    {
        auto wal = WriteAheadLog::create(wal_.string());
        std::vector<std::byte> body;
        wal_put_u32(body, 2);
        wal_put_u64(body, 240);
        wal_put_u64(body, 8);
        body.push_back(std::byte{0});
        for (int i = 0; i < 2; ++i) {
            wal_put_f64(body, 0.0);
            wal_put_f64(body, 1.0);
        }
        wal->append(WalRecordKind::kGenesis, body);
        wal->flush();
    }
    EXPECT_EQ(wal_probe_dims(wal_.string()), 2u);
    EXPECT_THROW(replay_wal<2>(data_.string(), wal_.string()), CheckError);
}

TEST_F(CrashRecoveryTest, WalOnAndOffBuildIdenticalGrids) {
    // Journaling must not perturb the engine: the same workload with and
    // without a WAL yields the same structure and record placement (the
    // WAL-off path is the byte-compatible legacy format the goldens pin).
    const Workload w = make_workload(300, 21);
    const auto plain = test::unique_temp_path("pgf_crash_plain");

    auto cfg_on = durable_config(wal_.string(), nullptr);
    PagedGridFile<2> on(data_.string(), domain_, cfg_on);
    apply_ops(on, w.ops);

    PagedGridFile<2>::Config cfg_off;
    cfg_off.page_size = PagedBucketStore<2>::page_size_for(8);
    cfg_off.pool_pages = 6;
    PagedGridFile<2> off(plain.string(), domain_, cfg_off);
    apply_ops(off, w.ops);

    ASSERT_EQ(on.record_count(), off.record_count());
    ASSERT_EQ(on.bucket_count(), off.bucket_count());
    ASSERT_EQ(on.grid_shape(), off.grid_shape());
    for (std::uint32_t b = 0; b < on.bucket_count(); ++b) {
        const auto& a = on.bucket_records(b);
        const auto& c = off.bucket_records(b);
        ASSERT_EQ(a.size(), c.size()) << b;
        for (std::size_t k = 0; k < a.size(); ++k) {
            ASSERT_EQ(a[k].id, c[k].id) << b << ":" << k;
        }
    }
    std::filesystem::remove(plain);
}

}  // namespace
}  // namespace pgf
