// Page-format primitives: CRC32C vectors, header field round trips, and
// the zero-page property the recovery design leans on (a page region the
// filesystem extended with zeros must verify as a valid empty page).
#include "pgf/storage/page.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace pgf {
namespace {

std::vector<std::byte> bytes_of(const char* text) {
    std::vector<std::byte> out(std::strlen(text));
    std::memcpy(out.data(), text, out.size());
    return out;
}

/// Our crc32c is zero-init / zero-xorout; the published CRC32C (iSCSI,
/// RFC 3720) vectors use 0xFFFFFFFF for both. The two are related by
/// seeding the register with ~0 and inverting the result, which doubles
/// as a test of the seed parameter.
std::uint32_t rfc3720(std::span<const std::byte> data) {
    return crc32c(data, 0xFFFFFFFFu) ^ 0xFFFFFFFFu;
}

TEST(Crc32c, MatchesPublishedVectors) {
    EXPECT_EQ(rfc3720(bytes_of("123456789")), 0xE3069283u);
    const std::vector<std::byte> zeros32(32, std::byte{0});
    EXPECT_EQ(rfc3720(zeros32), 0x8A9136AAu);
    const std::vector<std::byte> ones32(32, std::byte{0xFF});
    EXPECT_EQ(rfc3720(ones32), 0x62A8AB43u);
}

TEST(Crc32c, ZeroInitOfZerosIsZero) {
    // The property the whole page format depends on: with a zero initial
    // register and no final xor, any run of zero bytes keeps the register
    // at zero — so an all-zero page stores crc 0 and verifies.
    for (std::size_t n : {0u, 1u, 16u, 64u, 4096u}) {
        const std::vector<std::byte> zeros(n, std::byte{0});
        EXPECT_EQ(crc32c(zeros), 0u) << n << " zero bytes";
    }
}

TEST(Crc32c, SeedChainsIncrementalComputation) {
    const auto whole = bytes_of("declustering parallel grid files");
    for (std::size_t cut = 0; cut <= whole.size(); ++cut) {
        const std::span<const std::byte> a(whole.data(), cut);
        const std::span<const std::byte> b(whole.data() + cut,
                                           whole.size() - cut);
        EXPECT_EQ(crc32c(b, crc32c(a)), crc32c(whole)) << "cut " << cut;
    }
}

TEST(PageHeader, FieldRoundTripsAndChecksumDetectsFlips) {
    std::vector<std::byte> page(128, std::byte{0});
    for (std::size_t i = kPageHeaderBytes; i < page.size(); ++i) {
        page[i] = static_cast<std::byte>(i * 31);
    }
    set_page_lsn(page, 0x1122334455667788ull);
    EXPECT_EQ(page_lsn(page), 0x1122334455667788ull);

    // Stamp a checksum by hand the way PageFile::write does.
    const std::uint32_t crc = page_compute_crc(page);
    for (std::size_t i = 0; i < 4; ++i) {
        page[i] = static_cast<std::byte>((crc >> (8 * i)) & 0xff);
    }
    EXPECT_EQ(page_stored_crc(page), crc);
    EXPECT_TRUE(page_checksum_ok(page));

    // Any single flipped bit — payload, LSN, or the crc field itself —
    // must break verification.
    for (std::size_t i : {0u, 5u, 9u, 40u, 127u}) {
        page[i] ^= std::byte{0x10};
        EXPECT_FALSE(page_checksum_ok(page)) << "flip at " << i;
        page[i] ^= std::byte{0x10};
    }
    EXPECT_TRUE(page_checksum_ok(page));
}

TEST(PageHeader, AllZeroPageVerifies) {
    const std::vector<std::byte> page(256, std::byte{0});
    EXPECT_TRUE(page_checksum_ok(page));
    EXPECT_EQ(page_lsn(page), 0u);
    EXPECT_EQ(page_version(page), 0u);  // never written
}

TEST(PageHeader, RuntShorterThanHeaderNeverVerifies) {
    const std::vector<std::byte> runt(kPageHeaderBytes - 1, std::byte{0});
    EXPECT_FALSE(page_checksum_ok(runt));
}

}  // namespace
}  // namespace pgf
