// Unique per-test-case temp paths for the storage tests. ctest runs each
// gtest case in its own process, so a fixed file name shared by all of a
// fixture's cases collides when the suite runs with -j (one process's
// TearDown unlinks the file another process is still reading). Suffixing
// the current test name keeps paths distinct while staying deterministic
// and debuggable.
//
// Thin gtest adapter over pgf/util/temp_dir.hpp, which owns the naming
// and sanitization rules (and the TempDir RAII directory used by the
// external-sort spill path).
#pragma once

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "pgf/util/temp_dir.hpp"

namespace pgf::test {

using pgf::util::TempDir;

inline std::filesystem::path unique_temp_path(const std::string& stem,
                                              const std::string& ext = ".db") {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    std::string tag;
    if (info != nullptr) {
        tag = std::string(info->test_suite_name()) + "." + info->name();
    }
    return pgf::util::unique_temp_path(stem, tag, ext);
}

}  // namespace pgf::test
