// Unique per-test-case temp paths for the storage tests. ctest runs each
// gtest case in its own process, so a fixed file name shared by all of a
// fixture's cases collides when the suite runs with -j (one process's
// TearDown unlinks the file another process is still reading). Suffixing
// the current test name keeps paths distinct while staying deterministic
// and debuggable.
#pragma once

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

namespace pgf::test {

inline std::filesystem::path unique_temp_path(const std::string& stem,
                                              const std::string& ext = ".db") {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    std::string name = stem;
    if (info != nullptr) {
        name += '.';
        name += info->name();
    }
    // Value-parameterized test names carry a '/<param>' suffix; keep the
    // result a single file name.
    for (char& c : name) {
        if (c == '/') c = '_';
    }
    return std::filesystem::temp_directory_path() / (name + ext);
}

}  // namespace pgf::test
