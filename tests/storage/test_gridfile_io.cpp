#include "pgf/storage/gridfile_io.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "pgf/util/rng.hpp"
#include "pgf/workload/datasets.hpp"
#include "pgf/workload/query_gen.hpp"
#include "temp_path.hpp"

namespace pgf {
namespace {

class GridFileIoTest : public ::testing::Test {
protected:
    std::filesystem::path path_ = test::unique_temp_path("pgf_gridfile_io_test");

    void TearDown() override { std::filesystem::remove(path_); }
};

TEST_F(GridFileIoTest, RoundTripPreservesStructureAndRecords) {
    Rng rng(3);
    auto ds = make_hotspot2d(rng, 3000);
    GridFile<2> original = ds.build();
    std::uint64_t pages = save_grid_file(original, path_.string());
    EXPECT_GT(pages, 0u);

    GridFile<2> loaded = load_grid_file<2>(path_.string());
    EXPECT_EQ(loaded.record_count(), original.record_count());
    EXPECT_EQ(loaded.bucket_count(), original.bucket_count());
    EXPECT_EQ(loaded.merged_bucket_count(), original.merged_bucket_count());
    EXPECT_EQ(loaded.grid_shape(), original.grid_shape());
    EXPECT_EQ(loaded.config().bucket_capacity,
              original.config().bucket_capacity);

    // Every bucket identical (records in order, cell boxes equal).
    for (std::uint32_t b = 0; b < original.bucket_count(); ++b) {
        ASSERT_EQ(loaded.bucket(b).cells, original.bucket(b).cells);
        ASSERT_EQ(loaded.bucket(b).records.size(),
                  original.bucket(b).records.size());
        for (std::size_t k = 0; k < original.bucket(b).records.size(); ++k) {
            ASSERT_EQ(loaded.bucket(b).records[k].point,
                      original.bucket(b).records[k].point);
            ASSERT_EQ(loaded.bucket(b).records[k].id,
                      original.bucket(b).records[k].id);
        }
    }
}

TEST_F(GridFileIoTest, LoadedFileAnswersQueriesIdentically) {
    Rng rng(5);
    auto ds = make_correl2d(rng, 2500);
    GridFile<2> original = ds.build();
    save_grid_file(original, path_.string());
    GridFile<2> loaded = load_grid_file<2>(path_.string());

    Rng qrng(7);
    for (const auto& q : square_queries(ds.domain, 0.05, 100, qrng)) {
        ASSERT_EQ(loaded.query_buckets(q), original.query_buckets(q));
    }
}

TEST_F(GridFileIoTest, LoadedFileRemainsMutable) {
    Rng rng(9);
    auto ds = make_uniform2d(rng, 1500);
    GridFile<2> original = ds.build();
    save_grid_file(original, path_.string());
    GridFile<2> loaded = load_grid_file<2>(path_.string());
    // Keep inserting after the reload: splits must still work.
    for (std::uint64_t i = 0; i < 2000; ++i) {
        loaded.insert({{rng.uniform(0.0, 2000.0), rng.uniform(0.0, 2000.0)}},
                      100000 + i);
    }
    EXPECT_EQ(loaded.record_count(), 3500u);
    EXPECT_EQ(loaded.oversized_bucket_count(), 0u);
    Rect<2> all{{{0.0, 0.0}}, {{2000.0, 2000.0}}};
    EXPECT_EQ(loaded.query_records(all).size(), 3500u);
}

TEST_F(GridFileIoTest, ThreeDimensionalRoundTrip) {
    Rng rng(11);
    auto ds = make_dsmc3d(rng, 5000);
    GridFile<3> original = ds.build();
    save_grid_file(original, path_.string(), /*page_size=*/512);
    GridFile<3> loaded = load_grid_file<3>(path_.string());
    EXPECT_EQ(loaded.record_count(), original.record_count());
    EXPECT_EQ(loaded.structure().shape, original.structure().shape);
}

TEST_F(GridFileIoTest, WrongDimensionalityRejected) {
    Rng rng(13);
    auto ds = make_uniform2d(rng, 500);
    save_grid_file(ds.build(), path_.string());
    EXPECT_THROW(load_grid_file<3>(path_.string()), CheckError);
}

TEST_F(GridFileIoTest, CorruptMagicRejected) {
    {
        auto pf = PageFile::create(path_.string(), 4096);
        BufferPool pool(pf, 4);
        ByteWriter w(pool);
        w.put_string("NOTAGRID");
        w.finish();
        pf.sync();
    }
    EXPECT_THROW(load_grid_file<2>(path_.string()), CheckError);
}

TEST_F(GridFileIoTest, TruncatedSnapshotRejected) {
    Rng rng(7);
    auto ds = make_uniform2d(rng, 800);
    save_grid_file(ds.build(), path_.string());
    const std::uint64_t full = std::filesystem::file_size(path_);

    // Inside the superblock: not even a page file any more.
    std::filesystem::resize_file(path_, 10);
    EXPECT_THROW(load_grid_file<2>(path_.string()), CheckError);

    // Mid-snapshot: the torn page fails its checksum during the load.
    save_grid_file(ds.build(), path_.string());
    std::filesystem::resize_file(path_, full / 2 + 17);
    EXPECT_THROW(load_grid_file<2>(path_.string()), CheckError);
}

TEST_F(GridFileIoTest, FlippedByteFailsPageChecksumOnLoad) {
    Rng rng(9);
    auto ds = make_uniform2d(rng, 800);
    save_grid_file(ds.build(), path_.string());

    // One flipped bit in the middle of the snapshot body — past the page
    // header of whatever page it lands in, so only the checksum can tell.
    const std::uint64_t off = std::filesystem::file_size(path_) / 2 + 3;
    {
        std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
        f.seekg(static_cast<std::streamoff>(off));
        char b = 0;
        f.read(&b, 1);
        b = static_cast<char>(b ^ 0x20);
        f.seekp(static_cast<std::streamoff>(off));
        f.write(&b, 1);
    }
    EXPECT_THROW(load_grid_file<2>(path_.string()), CheckError);
}

TEST_F(GridFileIoTest, EmptyGridFileRoundTrip) {
    Rect<2> domain{{{0.0, 0.0}}, {{1.0, 1.0}}};
    GridFile<2> empty(domain, {.bucket_capacity = 8});
    save_grid_file(empty, path_.string());
    GridFile<2> loaded = load_grid_file<2>(path_.string());
    EXPECT_EQ(loaded.record_count(), 0u);
    EXPECT_EQ(loaded.bucket_count(), 1u);
}

}  // namespace
}  // namespace pgf
