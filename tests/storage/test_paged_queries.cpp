// Randomized query equivalence between the two grid-file backends: every
// range and partial-match query must return the same buckets and the same
// records (in the same order — the stores share the engine's partition-
// based splits) whether the bucket payloads live in memory or behind the
// buffer pool. The thrash cases run with far fewer pool frames than
// buckets, so every query evicts and re-reads pages; under ASan this also
// shakes out any use of page bytes past a pin's lifetime.
#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <vector>

#include "pgf/gridfile/grid_file.hpp"
#include "pgf/gridfile/partial_match.hpp"
#include "pgf/storage/paged_grid_file.hpp"
#include "pgf/util/rng.hpp"
#include "temp_path.hpp"

namespace pgf {
namespace {

template <std::size_t D>
struct Twins {
    GridFile<D> gf;
    PagedGridFile<D> pf;
    std::vector<Point<D>> pts;
};

// The paged twin is immovable (it owns a buffer pool), so the pair is
// created as a prvalue and filled in place afterwards.
template <std::size_t D>
Twins<D> make_twins(const std::filesystem::path& path, SplitPolicy policy,
                    std::size_t pool_pages) {
    Rect<D> domain;
    for (std::size_t d = 0; d < D; ++d) {
        domain.lo[d] = 0.0;
        domain.hi[d] = 1.0;
    }
    typename PagedGridFile<D>::Config pcfg;
    pcfg.page_size = PagedBucketStore<D>::page_size_for(24);
    pcfg.pool_pages = pool_pages;
    pcfg.split_policy = policy;
    typename GridFile<D>::Config mcfg;
    mcfg.bucket_capacity = 24;
    mcfg.split_policy = policy;
    return Twins<D>{GridFile<D>(domain, mcfg),
                    PagedGridFile<D>(path.string(), domain, pcfg),
                    {}};
}

template <std::size_t D>
void fill_twins(Twins<D>& t, std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    t.pts.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t d = 0; d < D; ++d) t.pts[i][d] = rng.uniform();
        t.gf.insert(t.pts[i], i);
        t.pf.insert(t.pts[i], i);
    }
}

template <std::size_t D, typename Query>
void expect_same_answers(const Twins<D>& t, const Query& q) {
    ASSERT_EQ(t.gf.query_buckets(q), t.pf.query_buckets(q));
    const auto mem = t.gf.query_records(q);
    const auto paged = t.pf.query_records(q);
    ASSERT_EQ(mem.size(), paged.size());
    for (std::size_t k = 0; k < mem.size(); ++k) {
        ASSERT_EQ(mem[k].id, paged[k].id) << k;
        ASSERT_EQ(mem[k].point, paged[k].point) << k;
    }
}

template <std::size_t D>
void run_range_queries(std::size_t pool_pages, std::uint64_t seed) {
    const auto path = test::unique_temp_path("pgf_paged_queries");
    auto t = make_twins<D>(path, SplitPolicy::kMidpoint, pool_pages);
    fill_twins(t, 4000, seed);
    Rng rng(seed + 100);
    for (int i = 0; i < 150; ++i) {
        Rect<D> q;
        for (std::size_t d = 0; d < D; ++d) {
            const double a = rng.uniform(), b = rng.uniform();
            q.lo[d] = std::min(a, b);
            q.hi[d] = std::max(a, b) * (i % 3 == 0 ? 1.0 : 0.3);
            if (q.hi[d] < q.lo[d]) std::swap(q.lo[d], q.hi[d]);
        }
        expect_same_answers(t, q);
    }
    std::filesystem::remove(path);
}

template <std::size_t D>
void run_partial_match_queries(std::size_t pool_pages, std::uint64_t seed) {
    const auto path = test::unique_temp_path("pgf_paged_queries");
    auto t = make_twins<D>(path, SplitPolicy::kMedian, pool_pages);
    fill_twins(t, 4000, seed);
    Rng rng(seed + 200);
    for (int i = 0; i < 120; ++i) {
        PartialMatch<D> q;
        // Pin a random non-empty strict subset of the axes; half the time
        // the pinned value is a stored coordinate so records actually
        // match, the other half it falls between records.
        const auto& donor =
            t.pts[static_cast<std::size_t>(rng.uniform() *
                                           static_cast<double>(t.pts.size()))];
        for (std::size_t d = 0; d < D; ++d) {
            if (rng.uniform() < 0.5) {
                q.key[d] = (i % 2 == 0) ? donor[d] : rng.uniform();
            }
        }
        if (!q.valid()) q.key[D - 1].reset();          // all axes pinned
        if (q.specified_count() == 0) q.key[0] = donor[0];  // none pinned
        expect_same_answers(t, q);
    }
    std::filesystem::remove(path);
}

TEST(PagedQueries, Range2d) { run_range_queries<2>(64, 51); }
TEST(PagedQueries, Range3d) { run_range_queries<3>(64, 52); }
TEST(PagedQueries, PartialMatch2d) { run_partial_match_queries<2>(64, 53); }
TEST(PagedQueries, PartialMatch3d) { run_partial_match_queries<3>(64, 54); }

// Thrash: pools far smaller than the bucket count, so queries continually
// evict and reload pages while answers must stay identical.
TEST(PagedQueries, Range2dThrashesPool) { run_range_queries<2>(2, 55); }
TEST(PagedQueries, PartialMatch3dThrashesPool) {
    run_partial_match_queries<3>(2, 56);
}

TEST(PagedQueries, ThrashedPoolReallyEvicts) {
    const auto path = test::unique_temp_path("pgf_paged_queries");
    auto t = make_twins<2>(path, SplitPolicy::kMidpoint, 2);
    fill_twins(t, 4000, 57);
    ASSERT_GT(t.pf.bucket_count(), 2u);
    const std::uint64_t evictions_before = t.pf.pool().evictions();
    Rect<2> everything{{{0.0, 0.0}}, {{1.0, 1.0}}};
    expect_same_answers(t, everything);
    EXPECT_GT(t.pf.pool().evictions(), evictions_before);
    std::filesystem::remove(path);
}

}  // namespace
}  // namespace pgf
