// Tests for the DES audit hook: clean runs stay clean, teardown violations
// and leftover events are reported, and engine-level PGF_CHECK failures
// carry the audit's report.
#include "pgf/analysis/sim_audit.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace pgf::analysis {
namespace {

bool has_finding(const ValidationReport& r, const std::string& invariant) {
    return std::any_of(
        r.findings.begin(), r.findings.end(),
        [&](const Finding& f) { return f.invariant == invariant; });
}

TEST(DesAudit, CleanRunHasNoFindings) {
    sim::Simulator sim;
    DesAudit audit(sim);
    int fired = 0;
    sim.schedule_at(1.0, [&] {
        ++fired;
        sim.schedule_in(0.5, [&] { ++fired; });
    });
    sim.schedule_at(2.0, [&] { ++fired; });
    EXPECT_EQ(sim.run(), 3u);
    audit.mark_teardown();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(audit.events_dispatched(), 3u);
    EXPECT_EQ(audit.events_scheduled(), 3u);
    EXPECT_TRUE(audit.report().ok()) << audit.report().summary();
    EXPECT_GT(audit.report().checks_run, 0u);
}

TEST(DesAudit, ReportsEventsPendingAtTeardown) {
    sim::Simulator sim;
    DesAudit audit(sim);
    sim.schedule_at(1.0, [] {});
    sim.schedule_at(5.0, [] {});
    EXPECT_EQ(sim.run(1), 1u);  // leaves the t=5 event queued
    audit.mark_teardown();
    EXPECT_FALSE(audit.report().ok());
    EXPECT_TRUE(has_finding(audit.report(), "sim.teardown.pending"))
        << audit.report().summary();
}

TEST(DesAudit, ReportsScheduleAfterTeardown) {
    sim::Simulator sim;
    DesAudit audit(sim);
    sim.schedule_at(1.0, [] {});
    sim.run();
    audit.mark_teardown();
    sim.schedule_at(9.0, [] {});
    EXPECT_TRUE(has_finding(audit.report(), "sim.teardown.schedule"))
        << audit.report().summary();
}

TEST(DesAudit, ReportsDispatchAfterTeardown) {
    sim::Simulator sim;
    DesAudit audit(sim);
    sim.schedule_at(1.0, [] {});
    audit.mark_teardown();  // also reports the pending event
    sim.run();
    EXPECT_TRUE(has_finding(audit.report(), "sim.teardown.dispatch"))
        << audit.report().summary();
}

TEST(DesAudit, EngineCheckFailureCarriesAuditReport) {
    sim::Simulator sim;
    DesAudit audit(sim);
    sim.schedule_at(3.0, [] {});
    sim.run();
    try {
        sim.schedule_at(1.0, [] {});  // into the past: engine PGF_CHECK fires
        FAIL() << "scheduling into the past must throw";
    } catch (const CheckError& e) {
        EXPECT_FALSE(e.report().empty());
        EXPECT_NE(e.report().find("[sim]"), std::string::npos) << e.report();
        EXPECT_NE(std::string(e.what()).find("sim.causality.schedule"),
                  std::string::npos)
            << e.what();
    }
}

TEST(DesAudit, DetachStopsObserving) {
    sim::Simulator sim;
    DesAudit audit(sim);
    sim.schedule_at(1.0, [] {});
    audit.detach();
    audit.mark_teardown();
    sim.schedule_at(2.0, [] {});  // unobserved: no finding
    EXPECT_FALSE(has_finding(audit.report(), "sim.teardown.schedule"));
    sim.run();
}

}  // namespace
}  // namespace pgf::analysis
