// Tests for the live-GridFile audit, including corrupted files assembled
// through GridFile<D>::restore that the cheaper load-time checks accept.
#include "pgf/analysis/grid_file_audit.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "pgf/gridfile/grid_file.hpp"
#include "pgf/util/rng.hpp"

namespace pgf::analysis {
namespace {

bool has_finding(const ValidationReport& r, const std::string& invariant) {
    return std::any_of(
        r.findings.begin(), r.findings.end(),
        [&](const Finding& f) { return f.invariant == invariant; });
}

TEST(AuditGridFile, GrownFilePassesDeep) {
    Rect<2> domain{{{0.0, 0.0}}, {{1.0, 1.0}}};
    GridFile<2>::Config cfg;
    cfg.bucket_capacity = 6;
    GridFile<2> gf(domain, cfg);
    Rng rng(11);
    for (std::uint64_t id = 0; id < 1500; ++id) {
        gf.insert(Point<2>{{rng.uniform(), rng.uniform()}}, id);
    }
    ValidationReport r = audit_grid_file(gf, ValidationLevel::kDeep);
    EXPECT_TRUE(r.ok()) << r.summary();
    EXPECT_GT(r.checks_run, gf.bucket_count());
}

/// A 1-D two-cell grid file assembled by hand: domain [0, 1), split at 0.5,
/// one bucket per cell. `left`/`right` are the record coordinates placed in
/// the respective buckets — pass a coordinate on the wrong side to corrupt.
GridFile<1> two_cell_file(std::vector<double> left,
                          std::vector<double> right) {
    Rect<1> domain{{{0.0}}, {{1.0}}};
    LinearScale scale(0.0, 1.0);
    EXPECT_TRUE(scale.insert_split(0.5, nullptr));
    GridFile<1>::Bucket b0, b1;
    b0.cells.lo = {0};
    b0.cells.hi = {1};
    b1.cells.lo = {1};
    b1.cells.hi = {2};
    std::uint64_t id = 0;
    for (double x : left) b0.records.push_back({Point<1>{{x}}, id++});
    for (double x : right) b1.records.push_back({Point<1>{{x}}, id++});
    GridFile<1>::Config cfg;
    cfg.bucket_capacity = 4;
    return GridFile<1>::restore(domain, cfg, {scale},
                                {std::move(b0), std::move(b1)});
}

TEST(AuditGridFile, RestoredCleanFilePasses) {
    GridFile<1> gf = two_cell_file({0.1, 0.3}, {0.6, 0.9});
    ValidationReport r = audit_grid_file(gf, ValidationLevel::kDeep);
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(AuditGridFile, DeepDetectsMisplacedRecord) {
    // 0.7 sits in the right cell but is stored in the left bucket; the
    // restore tiling checks cannot see this, only the per-record pass can.
    GridFile<1> gf = two_cell_file({0.1, 0.7}, {0.6, 0.9});
    EXPECT_TRUE(audit_grid_file(gf, ValidationLevel::kStandard).ok());
    ValidationReport r = audit_grid_file(gf, ValidationLevel::kDeep);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(has_finding(r, "gridfile.record.misplaced")) << r.summary();
}

TEST(AuditGridFile, FlagsOverCapacityMergedBucket) {
    Rect<2> domain{{{0.0, 0.0}}, {{1.0, 1.0}}};
    LinearScale sx(0.0, 1.0), sy(0.0, 1.0);
    EXPECT_TRUE(sx.insert_split(0.5, nullptr));
    // One merged bucket spans both cells and exceeds capacity: the grid
    // file contract says it should have been split along the grid line.
    GridFile<2>::Bucket merged;
    merged.cells.lo = {0, 0};
    merged.cells.hi = {2, 1};
    Rng rng(3);
    for (std::uint64_t id = 0; id < 5; ++id) {
        merged.records.push_back({Point<2>{{rng.uniform(), rng.uniform()}}, id});
    }
    GridFile<2>::Config cfg;
    cfg.bucket_capacity = 3;
    GridFile<2> gf = GridFile<2>::restore(domain, cfg, {sx, sy}, {merged});
    ValidationReport r = audit_grid_file(gf, ValidationLevel::kFast);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(has_finding(r, "gridfile.bucket.oversized_merged"))
        << r.summary();
}

TEST(AuditGridFile, LevelsAreMonotonicInWork) {
    Rect<2> domain{{{0.0, 0.0}}, {{1.0, 1.0}}};
    GridFile<2> gf(domain);
    Rng rng(5);
    for (std::uint64_t id = 0; id < 800; ++id) {
        gf.insert(Point<2>{{rng.uniform(), rng.uniform()}}, id);
    }
    const std::size_t fast =
        audit_grid_file(gf, ValidationLevel::kFast).checks_run;
    const std::size_t standard =
        audit_grid_file(gf, ValidationLevel::kStandard).checks_run;
    const std::size_t deep =
        audit_grid_file(gf, ValidationLevel::kDeep).checks_run;
    EXPECT_LT(fast, standard);
    EXPECT_LT(standard, deep);
}

}  // namespace
}  // namespace pgf::analysis
