// Tests for the page-level audit of the disk-backed grid file. The clean
// cases double as an end-to-end check of the paged backend's bookkeeping;
// the corruption case stomps a page header through the file's own buffer
// pool and expects the standard-level checks to flag it.
#include "pgf/analysis/paged_audit.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>

#include "pgf/util/rng.hpp"
#include "../storage/temp_path.hpp"

namespace pgf::analysis {
namespace {

bool has_finding(const ValidationReport& r, const std::string& invariant) {
    return std::any_of(
        r.findings.begin(), r.findings.end(),
        [&](const Finding& f) { return f.invariant == invariant; });
}

class PagedAuditTest : public ::testing::Test {
protected:
    std::filesystem::path path_ = test::unique_temp_path("pgf_paged_audit");
    Rect<2> domain_{{{0.0, 0.0}}, {{1.0, 1.0}}};

    void TearDown() override { std::filesystem::remove(path_); }

    PagedGridFile<2> make(std::size_t pool_pages = 16) {
        PagedGridFile<2>::Config cfg;
        cfg.page_size = 256;
        cfg.pool_pages = pool_pages;
        return PagedGridFile<2>(path_.string(), domain_, cfg);
    }

    void grow(PagedGridFile<2>& pf, std::size_t n, std::uint64_t seed) {
        Rng rng(seed);
        for (std::uint64_t id = 0; id < n; ++id) {
            pf.insert(Point<2>{{rng.uniform(), rng.uniform()}}, id);
        }
    }
};

TEST_F(PagedAuditTest, GrownFilePassesDeep) {
    auto pf = make();
    grow(pf, 2000, 17);
    pf.flush();
    ValidationReport r = audit_paged_grid_file(pf, ValidationLevel::kDeep);
    EXPECT_TRUE(r.ok()) << r.summary();
    // Deep runs the generic audit plus page ownership, scale
    // reconstruction, per-page header and roundtrip checks.
    EXPECT_GT(r.checks_run, 4 * pf.bucket_count());
}

TEST_F(PagedAuditTest, PassesWithThrashingPool) {
    // Two frames for dozens of buckets: every audit pass re-reads pages
    // from disk, so the checks exercise real page I/O, not cached state.
    auto pf = make(/*pool_pages=*/2);
    grow(pf, 1500, 19);
    ValidationReport r = audit_paged_grid_file(pf, ValidationLevel::kDeep);
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST_F(PagedAuditTest, LevelsAreMonotonicInWork) {
    auto pf = make();
    grow(pf, 1200, 23);
    const std::size_t fast =
        audit_paged_grid_file(pf, ValidationLevel::kFast).checks_run;
    const std::size_t standard =
        audit_paged_grid_file(pf, ValidationLevel::kStandard).checks_run;
    const std::size_t deep =
        audit_paged_grid_file(pf, ValidationLevel::kDeep).checks_run;
    EXPECT_LT(fast, standard);
    EXPECT_LT(standard, deep);
}

TEST_F(PagedAuditTest, FlagsLeakedPagePin) {
    auto pf = make();
    grow(pf, 800, 31);
    {
        // A PageRef held across the audit models a pin leak: every engine
        // operation scopes its pins, so a quiescent file must report none.
        auto leaked = pf.pool().fetch(pf.bucket_page(0));
        ValidationReport r =
            audit_paged_grid_file(pf, ValidationLevel::kFast);
        EXPECT_FALSE(r.ok());
        EXPECT_TRUE(has_finding(r, "paged.pool.pins")) << r.summary();
    }
    // Pin released: the same audit is clean again.
    ValidationReport clean = audit_paged_grid_file(pf, ValidationLevel::kFast);
    EXPECT_TRUE(clean.ok()) << clean.summary();
}

TEST_F(PagedAuditTest, StandardFlagsCorruptPageHeader) {
    auto pf = make();
    grow(pf, 800, 29);
    ASSERT_GT(pf.bucket_count(), 1u);
    {
        // Stomp bucket 0's on-page record count through the file's own
        // pool, the same channel the audit reads from.
        auto page = pf.pool().fetch(pf.bucket_page(0));
        page.data()[0] = std::byte{0xFF};
        page.mark_dirty();
    }
    ValidationReport r =
        audit_paged_grid_file(pf, ValidationLevel::kStandard);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(has_finding(r, "paged.page.header")) << r.summary();
    EXPECT_TRUE(has_finding(r, "paged.page.capacity")) << r.summary();
}

}  // namespace
}  // namespace pgf::analysis
