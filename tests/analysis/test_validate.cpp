// Unit tests for the pgf::analysis structure and declustering audits,
// including negative paths over deliberately corrupted structures.
#include "pgf/analysis/validate.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "pgf/gridfile/grid_file.hpp"
#include "pgf/util/rng.hpp"

namespace pgf::analysis {
namespace {

bool has_finding(const ValidationReport& r, const std::string& invariant) {
    return std::any_of(r.findings.begin(), r.findings.end(),
                       [&](const Finding& f) { return f.invariant == invariant; });
}

GridStructure small_grid() {
    return make_cartesian_structure({4, 4}, {0.0, 0.0}, {1.0, 1.0}, 3);
}

TEST(AuditStructure, CleanCartesianPassesEveryLevel) {
    GridStructure gs = small_grid();
    for (ValidationLevel level :
         {ValidationLevel::kFast, ValidationLevel::kStandard,
          ValidationLevel::kDeep}) {
        ValidationReport r = audit_structure(gs, level);
        EXPECT_TRUE(r.ok()) << r.summary();
        EXPECT_GT(r.checks_run, 0u);
    }
}

TEST(AuditStructure, CleanGridFileSnapshotPassesDeep) {
    Rect<2> domain{{{0.0, 0.0}}, {{1.0, 1.0}}};
    GridFile<2>::Config cfg;
    cfg.bucket_capacity = 8;
    GridFile<2> gf(domain, cfg);
    Rng rng(7);
    for (std::uint64_t id = 0; id < 500; ++id) {
        gf.insert(Point<2>{{rng.uniform(), rng.uniform()}}, id);
    }
    ValidationReport r =
        audit_structure(gf.structure(), ValidationLevel::kDeep);
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(AuditStructure, DetectsOverlappingBuckets) {
    GridStructure gs = small_grid();
    gs.buckets.push_back(gs.buckets.front());  // duplicate owner of cell 0
    ValidationReport r = audit_structure(gs, ValidationLevel::kStandard);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(has_finding(r, "gridfile.coverage.total")) << r.summary();
    EXPECT_TRUE(has_finding(r, "gridfile.coverage.overlap")) << r.summary();
}

TEST(AuditStructure, DetectsUncoveredCells) {
    GridStructure gs = small_grid();
    gs.buckets.pop_back();
    ValidationReport r = audit_structure(gs, ValidationLevel::kStandard);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(has_finding(r, "gridfile.coverage.hole")) << r.summary();
}

TEST(AuditStructure, DetectsCellBoxOutOfGrid) {
    GridStructure gs = small_grid();
    gs.buckets[5].cell_hi[0] = 9;  // beyond the 4-cell axis
    ValidationReport r = audit_structure(gs, ValidationLevel::kFast);
    EXPECT_TRUE(has_finding(r, "gridfile.bucket.cellbox")) << r.summary();
}

TEST(AuditStructure, DetectsRegionOutsideDomain) {
    GridStructure gs = small_grid();
    gs.buckets[2].region_hi[1] = 2.5;
    ValidationReport r = audit_structure(gs, ValidationLevel::kFast);
    EXPECT_TRUE(has_finding(r, "gridfile.bucket.region.domain")) << r.summary();
}

TEST(AuditStructure, DeepDetectsInconsistentImpliedScales) {
    GridStructure gs = small_grid();
    // Nudge one bucket's lower boundary off the grid line every other
    // bucket in its column agrees on. Fast/standard cannot see this; the
    // deep implied-scale reconstruction must.
    for (auto& b : gs.buckets) {
        if (b.cell_lo[0] == 1 && b.cell_lo[1] == 2) b.region_lo[0] = 0.26;
    }
    EXPECT_TRUE(audit_structure(gs, ValidationLevel::kStandard).ok());
    ValidationReport r = audit_structure(gs, ValidationLevel::kDeep);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(has_finding(r, "gridfile.scale.inconsistent")) << r.summary();
}

TEST(AuditStructure, DeepDetectsDomainAnchorDrift) {
    // 1-D, two cells: shift the whole first column off the domain lower
    // bound. All boundaries stay consistent and strictly increasing, so
    // only the domain anchor check can notice.
    GridStructure gs = make_cartesian_structure({2}, {0.0}, {1.0}, 1);
    gs.buckets[0].region_lo[0] = 0.1;
    ValidationReport r = audit_structure(gs, ValidationLevel::kDeep);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(has_finding(r, "gridfile.scale.domain_lo")) << r.summary();
}

TEST(AuditAssignment, RoundRobinPassesWithDeclaredBounds) {
    GridStructure gs = small_grid();
    Assignment a;
    a.num_disks = 4;
    for (std::uint32_t b = 0; b < gs.bucket_count(); ++b) {
        a.disk_of.push_back(b % a.num_disks);
    }
    AssignmentAuditOptions bounds;
    bounds.max_bucket_load = 4;       // 16 buckets over 4 disks
    bounds.max_data_imbalance = 1.0;  // uniform records_per_cell
    ValidationReport r =
        audit_assignment(gs, a, ValidationLevel::kDeep, bounds);
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(AuditAssignment, DetectsIncompleteAssignment) {
    GridStructure gs = small_grid();
    Assignment a;
    a.num_disks = 4;
    a.disk_of.assign(gs.bucket_count() - 3, 0);
    ValidationReport r = audit_assignment(gs, a, ValidationLevel::kFast);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(has_finding(r, "decluster.assignment.incomplete"))
        << r.summary();
}

TEST(AuditAssignment, DetectsUnknownDisk) {
    GridStructure gs = small_grid();
    Assignment a;
    a.num_disks = 4;
    a.disk_of.assign(gs.bucket_count(), 0);
    a.disk_of[7] = 99;
    ValidationReport r = audit_assignment(gs, a, ValidationLevel::kFast);
    EXPECT_TRUE(has_finding(r, "decluster.assignment.disk_range"))
        << r.summary();
}

TEST(AuditAssignment, DetectsLoadBoundViolation) {
    GridStructure gs = small_grid();
    Assignment a;
    a.num_disks = 4;
    a.disk_of.assign(gs.bucket_count(), 2);  // everything on one disk
    AssignmentAuditOptions bounds;
    bounds.max_bucket_load = 4;
    ValidationReport r =
        audit_assignment(gs, a, ValidationLevel::kStandard, bounds);
    EXPECT_TRUE(has_finding(r, "decluster.load.bound")) << r.summary();
}

TEST(AuditAssignment, DeepDetectsDataImbalance) {
    GridStructure gs = small_grid();
    Assignment a;
    a.num_disks = 4;
    a.disk_of.assign(gs.bucket_count(), 0);
    for (std::uint32_t b = 0; b < 4; ++b) a.disk_of[b] = b;  // token spread
    AssignmentAuditOptions bounds;
    bounds.max_data_imbalance = 1.5;
    ValidationReport r =
        audit_assignment(gs, a, ValidationLevel::kDeep, bounds);
    EXPECT_TRUE(has_finding(r, "decluster.balance.bound")) << r.summary();
}

TEST(AuditConflict, AcceptsResolutionInsideCandidateSets) {
    GridStructure gs = small_grid();
    std::vector<CandidateSet> candidates(gs.bucket_count());
    Assignment a;
    a.num_disks = 2;
    for (std::uint32_t b = 0; b < gs.bucket_count(); ++b) {
        candidates[b].disks = {b % 2};
        candidates[b].counts = {1};
        a.disk_of.push_back(b % 2);
    }
    ValidationReport r = audit_conflict_resolution(gs, candidates, a);
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(AuditConflict, DetectsResolutionOutsideCandidateSet) {
    GridStructure gs = small_grid();
    std::vector<CandidateSet> candidates(gs.bucket_count());
    Assignment a;
    a.num_disks = 2;
    for (std::uint32_t b = 0; b < gs.bucket_count(); ++b) {
        candidates[b].disks = {b % 2};
        candidates[b].counts = {1};
        a.disk_of.push_back(b % 2);
    }
    a.disk_of[3] = 1 - a.disk_of[3];  // flip outside the candidate set
    ValidationReport r = audit_conflict_resolution(gs, candidates, a);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(has_finding(r, "decluster.conflict.postcondition"))
        << r.summary();
}

TEST(AuditConflict, DetectsMultiplicityMismatch) {
    GridStructure gs = small_grid();
    std::vector<CandidateSet> candidates(gs.bucket_count());
    Assignment a;
    a.num_disks = 2;
    for (std::uint32_t b = 0; b < gs.bucket_count(); ++b) {
        candidates[b].disks = {b % 2};
        candidates[b].counts = {1};
        a.disk_of.push_back(b % 2);
    }
    candidates[6].counts = {5};  // bucket spans 1 cell, claims 5
    ValidationReport r = audit_conflict_resolution(gs, candidates, a);
    EXPECT_TRUE(has_finding(r, "decluster.conflict.multiplicity"))
        << r.summary();
}

TEST(ValidationReport, MergeAccumulatesAndSummaryNames) {
    ValidationReport a("one", ValidationLevel::kFast);
    a.require(true, "x.pass", "");
    ValidationReport b("two", ValidationLevel::kDeep);
    b.require(false, "y.fail", "broken widget 42");
    a.merge(b);
    EXPECT_EQ(a.subsystem, "one");
    EXPECT_EQ(a.level, ValidationLevel::kDeep);
    EXPECT_EQ(a.checks_run, 2u);
    EXPECT_FALSE(a.ok());
    std::string text = a.summary();
    EXPECT_NE(text.find("y.fail"), std::string::npos);
    EXPECT_NE(text.find("broken widget 42"), std::string::npos);
}

TEST(ValidationReport, SummaryElidesBeyondLimit) {
    ValidationReport r("many", ValidationLevel::kFast);
    for (int i = 0; i < 30; ++i) {
        r.require(false, "z.fail", "finding " + std::to_string(i));
    }
    std::string text = r.summary(5);
    EXPECT_NE(text.find("finding 4"), std::string::npos);
    EXPECT_EQ(text.find("finding 5"), std::string::npos);
    EXPECT_NE(text.find("and 25 more"), std::string::npos);
}

TEST(ValidationReport, EnforceThrowsCheckErrorWithReport) {
    ValidationReport clean("ok", ValidationLevel::kFast);
    clean.require(true, "fine", "");
    EXPECT_NO_THROW(clean.enforce());

    ValidationReport bad("gridfile", ValidationLevel::kStandard);
    bad.require(false, "gridfile.coverage.hole", "cell (1, 2) unowned");
    try {
        bad.enforce();
        FAIL() << "enforce() must throw on findings";
    } catch (const CheckError& e) {
        std::string what = e.what();
        EXPECT_NE(what.find("gridfile.coverage.hole"), std::string::npos);
        EXPECT_NE(what.find("cell (1, 2) unowned"), std::string::npos);
    }
}

TEST(ValidationLevelNames, RoundTrip) {
    for (ValidationLevel level :
         {ValidationLevel::kFast, ValidationLevel::kStandard,
          ValidationLevel::kDeep}) {
        ValidationLevel parsed = ValidationLevel::kFast;
        ASSERT_TRUE(parse_validation_level(to_string(level), &parsed));
        EXPECT_EQ(parsed, level);
    }
    ValidationLevel unused = ValidationLevel::kFast;
    EXPECT_FALSE(parse_validation_level("paranoid", &unused));
}

}  // namespace
}  // namespace pgf::analysis
