#include "pgf/disksim/simulator.hpp"

#include <gtest/gtest.h>

#include "pgf/decluster/registry.hpp"
#include "pgf/util/rng.hpp"
#include "pgf/workload/query_gen.hpp"

namespace pgf {
namespace {

TEST(EvaluateWorkload, HandComputedAverages) {
    Assignment a{{0, 1, 0, 1}, 2};
    std::vector<std::vector<std::uint32_t>> queries{
        {0, 1},        // response 1, buckets 2
        {0, 2},        // both disk 0: response 2, buckets 2
        {0, 1, 2, 3},  // response 2, buckets 4
    };
    WorkloadStats s = evaluate_workload(queries, a);
    EXPECT_EQ(s.queries, 3u);
    EXPECT_DOUBLE_EQ(s.avg_response, (1.0 + 2.0 + 2.0) / 3.0);
    EXPECT_DOUBLE_EQ(s.max_response, 2.0);
    EXPECT_DOUBLE_EQ(s.avg_buckets, (2.0 + 2.0 + 4.0) / 3.0);
    EXPECT_DOUBLE_EQ(s.optimal, s.avg_buckets / 2.0);
    EXPECT_DOUBLE_EQ(s.data_balance, 1.0);
}

TEST(EvaluateWorkload, EmptyWorkload) {
    Assignment a{{0, 1}, 2};
    WorkloadStats s = evaluate_workload({}, a);
    EXPECT_EQ(s.queries, 0u);
    EXPECT_DOUBLE_EQ(s.avg_response, 0.0);
    EXPECT_DOUBLE_EQ(s.data_balance, 1.0);
}

TEST(EvaluateWorkload, ResponseNeverBelowOptimal) {
    Rng rng(3);
    Rect<2> domain{{{0.0, 0.0}}, {{1.0, 1.0}}};
    GridFile<2>::Config cfg;
    cfg.bucket_capacity = 5;
    GridFile<2> gf(domain, cfg);
    for (std::uint64_t i = 0; i < 1000; ++i) {
        gf.insert({{rng.uniform(), rng.uniform()}}, i);
    }
    auto queries = square_queries(domain, 0.05, 200, rng);
    auto qb = collect_query_buckets(gf, queries);
    GridStructure gs = gf.structure();
    for (Method m : {Method::kDiskModulo, Method::kHilbert, Method::kMinimax}) {
        Assignment a = decluster(gs, m, 8, {.seed = 4});
        WorkloadStats s = evaluate_workload(qb, a);
        EXPECT_GE(s.avg_response, s.optimal) << to_string(m);
        EXPECT_GE(s.max_response, s.avg_response) << to_string(m);
    }
}

TEST(CollectQueryBuckets, MatchesDirectQueries) {
    Rng rng(7);
    Rect<2> domain{{{0.0, 0.0}}, {{1.0, 1.0}}};
    GridFile<2>::Config cfg;
    cfg.bucket_capacity = 4;
    GridFile<2> gf(domain, cfg);
    for (std::uint64_t i = 0; i < 400; ++i) {
        gf.insert({{rng.uniform(), rng.uniform()}}, i);
    }
    auto queries = square_queries(domain, 0.1, 50, rng);
    auto collected = collect_query_buckets(gf, queries);
    ASSERT_EQ(collected.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
        EXPECT_EQ(collected[i], gf.query_buckets(queries[i]));
    }
}

TEST(EvaluateWorkload, MoreDisksNeverHurtOptimal) {
    // The optimal reference halves when M doubles; sanity for the sweep
    // logic used by every figure bench.
    std::vector<std::vector<std::uint32_t>> queries{{0, 1, 2, 3, 4, 5, 6, 7}};
    Assignment a4{{0, 1, 2, 3, 0, 1, 2, 3}, 4};
    Assignment a8{{0, 1, 2, 3, 4, 5, 6, 7}, 8};
    WorkloadStats s4 = evaluate_workload(queries, a4);
    WorkloadStats s8 = evaluate_workload(queries, a8);
    EXPECT_DOUBLE_EQ(s4.optimal, 2.0);
    EXPECT_DOUBLE_EQ(s8.optimal, 1.0);
    EXPECT_DOUBLE_EQ(s4.avg_response, 2.0);
    EXPECT_DOUBLE_EQ(s8.avg_response, 1.0);
}

}  // namespace
}  // namespace pgf
