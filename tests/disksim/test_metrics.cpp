#include "pgf/disksim/metrics.hpp"

#include <gtest/gtest.h>

#include <set>

#include "pgf/util/check.hpp"
#include "pgf/util/thread_pool.hpp"

namespace pgf {
namespace {

Assignment assign(std::initializer_list<std::uint32_t> disks,
                  std::uint32_t m) {
    return Assignment{std::vector<std::uint32_t>(disks), m};
}

TEST(ResponseTime, MaxPerDiskCount) {
    Assignment a = assign({0, 1, 0, 2, 1, 0}, 3);
    // Query touches buckets 0,1,2,3: disks 0,1,0,2 -> disk 0 serves 2.
    EXPECT_EQ(response_time({0, 1, 2, 3}, a), 2u);
    // All buckets: disk 0 has 3.
    EXPECT_EQ(response_time({0, 1, 2, 3, 4, 5}, a), 3u);
    EXPECT_EQ(response_time({}, a), 0u);
    EXPECT_EQ(response_time({3}, a), 1u);
}

TEST(ResponseTime, UnknownBucketThrows) {
    Assignment a = assign({0, 1}, 2);
    EXPECT_THROW(response_time({5}, a), CheckError);
}

TEST(ResponseAccumulator, MatchesFreeFunctionAcrossReuse) {
    // The epoch-stamped accumulator must agree with the per-call histogram
    // version on every query, with one accumulator reused throughout.
    Assignment a = assign({0, 1, 0, 2, 1, 0, 2, 2}, 3);
    ResponseAccumulator acc;
    std::vector<std::vector<std::uint32_t>> queries{
        {0, 1, 2, 3}, {}, {3}, {0, 1, 2, 3, 4, 5, 6, 7}, {4, 6, 7}, {0, 2, 5}};
    for (const auto& q : queries) {
        EXPECT_EQ(acc.response_time(q, a), response_time(q, a));
    }
}

TEST(ResponseAccumulator, ReusableAcrossAssignmentsOfDifferentWidth) {
    ResponseAccumulator acc;
    Assignment narrow = assign({0, 1}, 2);
    EXPECT_EQ(acc.response_time({0, 1}, narrow), 1u);
    Assignment wide = assign({0, 1, 2, 3, 0, 1, 2, 3}, 4);
    EXPECT_EQ(acc.response_time({0, 4}, wide), 2u);
    EXPECT_EQ(acc.response_time({0, 1, 2, 3}, wide), 1u);
    // Shrinking back must not read stale counters from the wide epoch.
    EXPECT_EQ(acc.response_time({0}, narrow), 1u);
}

TEST(ResponseAccumulator, UnknownBucketThrows) {
    ResponseAccumulator acc;
    Assignment a = assign({0, 1}, 2);
    EXPECT_THROW(acc.response_time({5}, a), CheckError);
}

TEST(OptimalResponse, AverageOverDisks) {
    EXPECT_DOUBLE_EQ(optimal_response(12.0, 4), 3.0);
    EXPECT_DOUBLE_EQ(optimal_response(10.0, 4), 2.5);
    EXPECT_THROW(optimal_response(10.0, 0), CheckError);
}

TEST(DataBalance, PerfectDistributionIsOne) {
    Assignment a = assign({0, 1, 2, 0, 1, 2}, 3);
    EXPECT_DOUBLE_EQ(degree_of_data_balance(a), 1.0);
}

TEST(DataBalance, SkewDetected) {
    Assignment a = assign({0, 0, 0, 1}, 2);
    // B_max = 3, M = 2, B_sum = 4 -> 1.5.
    EXPECT_DOUBLE_EQ(degree_of_data_balance(a), 1.5);
}

TEST(DataBalance, UnusedDiskCountsAgainstBalance) {
    Assignment a = assign({0, 0}, 2);
    EXPECT_DOUBLE_EQ(degree_of_data_balance(a), 2.0);
}

TEST(DataBalance, EmptyAssignmentThrows) {
    Assignment a;
    a.num_disks = 2;
    EXPECT_THROW(degree_of_data_balance(a), CheckError);
}

TEST(AreaBalance, WeighsVolumeNotCount) {
    // Two buckets on disk 0 with tiny volume, one big on disk 1.
    GridStructure gs;
    gs.shape = {3};
    gs.domain_lo = {0.0};
    gs.domain_hi = {10.0};
    auto add = [&](double lo, double hi, std::uint32_t c0, std::uint32_t c1) {
        BucketInfo b;
        b.cell_lo = {c0};
        b.cell_hi = {c1};
        b.region_lo = {lo};
        b.region_hi = {hi};
        gs.buckets.push_back(b);
    };
    add(0.0, 1.0, 0, 1);
    add(1.0, 2.0, 1, 2);
    add(2.0, 10.0, 2, 3);
    Assignment a = assign({0, 0, 1}, 2);
    // Volumes: disk0 = 2, disk1 = 8, total 10 -> 8*2/10 = 1.6.
    EXPECT_DOUBLE_EQ(degree_of_area_balance(gs, a), 1.6);
    // Count balance would report perfect-ish: B_max*M/B_sum = 2*2/3.
    EXPECT_NEAR(degree_of_data_balance(a), 4.0 / 3.0, 1e-12);
}

TEST(NearestNeighbors, ChainStructure) {
    // 1-d Cartesian row: each bucket's nearest neighbor is an adjacent one.
    auto gs = make_cartesian_structure({6}, {0.0}, {6.0});
    BucketWeights w(gs);
    auto nn = nearest_neighbors(w);
    ASSERT_EQ(nn.size(), 6u);
    EXPECT_EQ(nn[0], 1u);
    EXPECT_EQ(nn[5], 4u);
    for (std::size_t i = 1; i < 5; ++i) {
        EXPECT_TRUE(nn[i] == i - 1 || nn[i] == i + 1) << i;
    }
}

TEST(NearestNeighbors, TieBreaksToLowestIndex) {
    // Uniform 1-d row: for an interior bucket the left and right neighbors
    // are congruent, so their weights are exactly equal — a real tie. The
    // documented contract pins the winner to the LOWER index (the left
    // neighbor), and Tables 2/3 depend on that being stable.
    auto gs = make_cartesian_structure({6}, {0.0}, {6.0});
    BucketWeights w(gs);
    for (std::size_t i = 1; i < 5; ++i) {
        ASSERT_EQ(w(i, i - 1), w(i, i + 1)) << "premise: tie at " << i;
    }
    auto nn = nearest_neighbors(w);
    for (std::size_t i = 1; i < 5; ++i) {
        EXPECT_EQ(nn[i], i - 1) << "tie must break to the lower index";
    }
}

TEST(NearestNeighbors, TieBreaksToLowestIndex2d) {
    // Square cells over a square domain: an interior cell's four axis
    // neighbors all tie; row-major indexing makes the north neighbor
    // (i - width) the lowest index.
    auto gs = make_cartesian_structure({4, 4}, {0.0, 0.0}, {4.0, 4.0});
    BucketWeights w(gs);
    auto nn = nearest_neighbors(w);
    const std::size_t interior = 1 * 4 + 1;  // cell (1,1)
    ASSERT_EQ(w(interior, interior - 4), w(interior, interior + 4));
    ASSERT_EQ(w(interior, interior - 4), w(interior, interior - 1));
    EXPECT_EQ(nn[interior], interior - 4);
}

TEST(NearestNeighbors, PooledMatchesSerialAboveThreshold) {
    // 46 x 46 = 2116 buckets crosses the parallel-scan threshold (2048),
    // so the pooled path actually chunks; the result must be identical —
    // including every tie — at every thread count.
    auto gs = make_cartesian_structure({46, 46}, {0.0, 0.0}, {46.0, 46.0});
    BucketWeights w(gs);
    const auto serial = nearest_neighbors(w);
    for (unsigned workers : {1u, 3u}) {
        ThreadPool pool(workers);
        EXPECT_EQ(nearest_neighbors(w, &pool), serial)
            << "workers=" << workers;
    }
}

TEST(ClosestPairs, SortedDedupMatchesSetReference) {
    auto gs = make_cartesian_structure({46, 46}, {0.0, 0.0}, {46.0, 46.0});
    Assignment a;
    a.num_disks = 4;
    a.disk_of.resize(gs.bucket_count());
    for (std::size_t b = 0; b < a.disk_of.size(); ++b) {
        a.disk_of[b] = static_cast<std::uint32_t>((b / 3) % 4);
    }
    // Reference implementation: the std::set the production code replaced.
    BucketWeights w(gs);
    auto nn = nearest_neighbors(w);
    std::set<std::pair<std::size_t, std::size_t>> reference;
    for (std::size_t b = 0; b < nn.size(); ++b) {
        if (a.disk_of[b] == a.disk_of[nn[b]]) {
            reference.insert({std::min(b, nn[b]), std::max(b, nn[b])});
        }
    }
    EXPECT_EQ(closest_pairs_same_disk(gs, a), reference.size());
    ThreadPool pool(2);
    EXPECT_EQ(closest_pairs_same_disk(gs, a, WeightKind::kProximityIndex,
                                      &pool),
              reference.size());
}

TEST(ClosestPairs, AllSeparatedGivesZero) {
    auto gs = make_cartesian_structure({4}, {0.0}, {4.0});
    // Alternating disks: neighbors always differ.
    Assignment a = assign({0, 1, 0, 1}, 2);
    EXPECT_EQ(closest_pairs_same_disk(gs, a), 0u);
}

TEST(ClosestPairs, AllTogetherCountsDistinctPairs) {
    auto gs = make_cartesian_structure({4}, {0.0}, {4.0});
    Assignment a = assign({0, 0, 0, 0}, 2);
    // nn: 0->1, 1->0 or 2, 2->1 or 3, 3->2. Distinct pairs are at most 3
    // and at least 2 (mutual pairs dedup).
    std::size_t pairs = closest_pairs_same_disk(gs, a);
    EXPECT_GE(pairs, 2u);
    EXPECT_LE(pairs, 3u);
}

TEST(ClosestPairs, SingleBucketIsZero) {
    auto gs = make_cartesian_structure({1}, {0.0}, {1.0});
    Assignment a = assign({0}, 2);
    EXPECT_EQ(closest_pairs_same_disk(gs, a), 0u);
}

TEST(ClosestPairs, MismatchedAssignmentThrows) {
    auto gs = make_cartesian_structure({4}, {0.0}, {4.0});
    Assignment a = assign({0, 1}, 2);
    EXPECT_THROW(closest_pairs_same_disk(gs, a), CheckError);
    EXPECT_THROW(degree_of_area_balance(gs, a), CheckError);
}

}  // namespace
}  // namespace pgf
