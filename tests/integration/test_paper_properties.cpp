// Properties the paper asserts, verified at reduced scale on the same
// synthetic datasets the benches use. These are the claims a reproduction
// must preserve (Secs. 2.2.1, 3.3, 3.4).
#include <gtest/gtest.h>

#include "pgf/analytic/dm_theory.hpp"
#include "pgf/decluster/registry.hpp"
#include "pgf/disksim/simulator.hpp"
#include "pgf/util/rng.hpp"
#include "pgf/workload/datasets.hpp"
#include "pgf/workload/query_gen.hpp"

namespace pgf {
namespace {

struct Bench2d {
    Dataset<2> ds;
    GridFile<2> gf;
    GridStructure gs;
    std::vector<std::vector<std::uint32_t>> qb;

    Bench2d(Dataset<2> dataset, double ratio, std::size_t queries,
            std::uint64_t qseed)
        : ds(std::move(dataset)), gf(ds.build()), gs(gf.structure()) {
        Rng rng(qseed);
        qb = collect_query_buckets(
            gf, square_queries(ds.domain, ratio, queries, rng));
    }

    double response(Method m, std::uint32_t disks) const {
        Assignment a = decluster(gs, m, disks, {.seed = 1});
        return evaluate_workload(qb, a).avg_response;
    }
};

TEST(PaperProperties, DmSaturatesOnUniformData) {
    // Fig. 4 (left): DM's response flattens once M crosses a threshold —
    // going from 16 to 32 disks buys almost nothing, while the optimal
    // keeps halving.
    Rng rng(1);
    Bench2d bench(make_uniform2d(rng, 10000), 0.05, 400, 2);
    double r4 = bench.response(Method::kDiskModulo, 4);
    double r16 = bench.response(Method::kDiskModulo, 16);
    double r32 = bench.response(Method::kDiskModulo, 32);
    EXPECT_LT(r16, r4);                 // early scaling works
    EXPECT_GT(r32, 0.80 * r16);         // late scaling saturates
}

TEST(PaperProperties, HcamKeepsScalingWhereDmStalls) {
    // Fig. 4: for large M, HCAM/D response is below DM/D on every dataset.
    Rng rng(3);
    for (auto maker : {&make_uniform2d, &make_hotspot2d, &make_correl2d}) {
        Bench2d bench(maker(rng, 10000), 0.05, 400, 5);
        double dm = bench.response(Method::kDiskModulo, 32);
        double hcam = bench.response(Method::kHilbert, 32);
        EXPECT_LT(hcam, dm) << bench.ds.name;
    }
}

TEST(PaperProperties, DmBestForSmallDiskCounts) {
    // Fig. 4: "For a small number of disks, DM is better than both FX and
    // HCAM for all three datasets."
    Rng rng(7);
    Bench2d bench(make_uniform2d(rng, 10000), 0.05, 400, 9);
    double dm = bench.response(Method::kDiskModulo, 4);
    double fx = bench.response(Method::kFieldwiseXor, 4);
    double hcam = bench.response(Method::kHilbert, 4);
    EXPECT_LE(dm, fx * 1.02);
    EXPECT_LE(dm, hcam * 1.02);
}

TEST(PaperProperties, DataBalanceHeuristicBeatsRandom) {
    // Fig. 3: data balance is the best conflict-resolution heuristic; on
    // the heavily merged hot.2d grid it must not lose to random selection.
    Rng rng(11);
    auto ds = make_hotspot2d(rng, 10000);
    GridFile<2> gf = ds.build();
    GridStructure gs = gf.structure();
    Rng qrng(13);
    auto qb = collect_query_buckets(
        gf, square_queries(ds.domain, 0.05, 400, qrng));
    double worse_total = 0.0, better_total = 0.0;
    for (std::uint32_t m : {8u, 16u, 24u, 32u}) {
        // Average the random heuristic over several seeds: the claim is
        // about its expectation, and a single lucky draw can tie.
        double random_avg = 0.0;
        for (std::uint64_t seed = 17; seed < 22; ++seed) {
            DeclusterOptions random_opt;
            random_opt.heuristic = ConflictHeuristic::kRandom;
            random_opt.seed = seed;
            Assignment ra = decluster(gs, Method::kFieldwiseXor, m, random_opt);
            random_avg += evaluate_workload(qb, ra).avg_response / 5.0;
        }
        DeclusterOptions balance_opt;
        balance_opt.heuristic = ConflictHeuristic::kDataBalance;
        Assignment ba = decluster(gs, Method::kFieldwiseXor, m, balance_opt);
        worse_total += random_avg;
        better_total += evaluate_workload(qb, ba).avg_response;
    }
    EXPECT_LT(better_total, worse_total * 1.01);
}

TEST(PaperProperties, MinimaxConsistentlyBestAtScale) {
    // Fig. 6: minimax achieves the smallest response among all five
    // algorithms for large M on skewed data (small-M exceptions allowed).
    Rng rng(19);
    Bench2d bench(make_hotspot2d(rng, 10000), 0.01, 400, 21);
    double mm = bench.response(Method::kMinimax, 32);
    for (Method other : {Method::kDiskModulo, Method::kFieldwiseXor,
                         Method::kHilbert, Method::kSsp}) {
        EXPECT_LE(mm, bench.response(other, 32) * 1.05) << to_string(other);
    }
}

TEST(PaperProperties, MinimaxPerfectDataBalanceEverywhere) {
    // Sec. 4: minimax "achieves perfect data balance".
    Rng rng(23);
    auto ds = make_hotspot2d(rng, 8000);
    GridStructure gs = ds.build().structure();
    for (std::uint32_t m = 4; m <= 32; m += 4) {
        Assignment a = decluster(gs, Method::kMinimax, m, {.seed = 25});
        auto load = a.load();
        std::size_t cap = (gs.bucket_count() + m - 1) / m;
        for (auto l : load) EXPECT_LE(l, cap) << "M=" << m;
    }
}

TEST(PaperProperties, SmallerQueriesFavorMinimaxOverHcam) {
    // Fig. 7 trend: "the relative performance benefit of minimax over
    // Hilbert curve grows as the size of query decreases."
    Rng rng(29);
    auto ds = make_hotspot2d(rng, 10000);
    GridFile<2> gf = ds.build();
    GridStructure gs = gf.structure();
    auto ratio_at = [&](double r) {
        Rng qrng(31);
        auto qb = collect_query_buckets(
            gf, square_queries(ds.domain, r, 400, qrng));
        Assignment hcam = decluster(gs, Method::kHilbert, 16, {.seed = 33});
        Assignment mm = decluster(gs, Method::kMinimax, 16, {.seed = 33});
        return evaluate_workload(qb, hcam).avg_response /
               evaluate_workload(qb, mm).avg_response;
    };
    // Benefit (HCAM/minimax ratio) should not shrink as queries get small.
    EXPECT_GE(ratio_at(0.01), ratio_at(0.1) * 0.95);
}

TEST(PaperProperties, Theorem1ExplainsUniformSaturation) {
    // The simulated DM saturation threshold on the uniform dataset should
    // sit near the analytic M > l regime: with r = 0.05 on a ~16x16 grid
    // the query covers l ~ sqrt(0.05)*16 ~ 3.6 cells per side, so the
    // analytic response freezes at ~l for M > l.
    for (std::uint32_t m : {8u, 16u, 32u}) {
        EXPECT_EQ(dm_theorem1(4, m).response, 4u);
    }
}

}  // namespace
}  // namespace pgf
