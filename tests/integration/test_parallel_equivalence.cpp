// Serial vs pooled equivalence for the O(N^2) scans (ISSUE 3 contract):
// handing a ThreadPool to the similarity declusterers and the
// nearest-neighbor metric must not change a single bit of output, at any
// thread count. The structures here exceed the parallel-scan threshold
// (2048 buckets) so the pooled code paths genuinely chunk.
#include <gtest/gtest.h>

#include "pgf/decluster/similarity.hpp"
#include "pgf/disksim/metrics.hpp"
#include "pgf/graph/kernighan_lin.hpp"
#include "pgf/gridfile/structure.hpp"
#include "pgf/util/thread_pool.hpp"

namespace pgf {
namespace {

// 46 x 46 = 2116 buckets > kParallelScanThreshold. Rectangular cells keep
// the weights asymmetric across dimensions.
GridStructure big_structure() {
    return make_cartesian_structure({46, 46}, {0.0, 0.0}, {92.0, 23.0});
}

// Worker counts so the pool's total parallelism is 2 and 4 (workers + the
// calling thread).
constexpr unsigned kWorkerCounts[] = {1, 3};
constexpr std::uint64_t kSeeds[] = {1, 42};

TEST(ParallelEquivalence, SspDeclusterMatchesSerial) {
    GridStructure gs = big_structure();
    for (std::uint64_t seed : kSeeds) {
        SimilarityOptions serial_opt;
        serial_opt.seed = seed;
        const Assignment serial = ssp_decluster(gs, 16, serial_opt);
        for (unsigned workers : kWorkerCounts) {
            ThreadPool pool(workers);
            SimilarityOptions opt;
            opt.seed = seed;
            opt.pool = &pool;
            const Assignment pooled = ssp_decluster(gs, 16, opt);
            ASSERT_EQ(pooled.disk_of, serial.disk_of)
                << "seed=" << seed << " workers=" << workers;
        }
    }
}

TEST(ParallelEquivalence, MstDeclusterMatchesSerial) {
    GridStructure gs = big_structure();
    for (std::uint64_t seed : kSeeds) {
        SimilarityOptions serial_opt;
        serial_opt.seed = seed;
        const Assignment serial = mst_decluster(gs, 16, serial_opt);
        for (unsigned workers : kWorkerCounts) {
            ThreadPool pool(workers);
            SimilarityOptions opt;
            opt.seed = seed;
            opt.pool = &pool;
            const Assignment pooled = mst_decluster(gs, 16, opt);
            ASSERT_EQ(pooled.disk_of, serial.disk_of)
                << "seed=" << seed << " workers=" << workers;
        }
    }
}

TEST(ParallelEquivalence, KlRefineMatchesSerial) {
    GridStructure gs = big_structure();
    BucketWeights weights(gs);
    for (std::uint64_t seed : kSeeds) {
        // A deliberately bad deterministic start so KL has swaps to find.
        std::vector<std::uint32_t> start(gs.bucket_count());
        for (std::size_t b = 0; b < start.size(); ++b) {
            start[b] = static_cast<std::uint32_t>((b + seed) / 7 % 16);
        }
        std::vector<std::uint32_t> serial_disks = start;
        const KlResult serial =
            kl_refine(serial_disks, 16, weights, 2, nullptr);
        for (unsigned workers : kWorkerCounts) {
            ThreadPool pool(workers);
            std::vector<std::uint32_t> pooled_disks = start;
            const KlResult pooled =
                kl_refine(pooled_disks, 16, weights, 2, &pool);
            ASSERT_EQ(pooled_disks, serial_disks)
                << "seed=" << seed << " workers=" << workers;
            ASSERT_EQ(pooled.swaps, serial.swaps);
            // Bit-exact, not approximately equal: the parallel gain scans
            // must preserve the serial arithmetic.
            ASSERT_EQ(pooled.internal_before, serial.internal_before);
            ASSERT_EQ(pooled.internal_after, serial.internal_after);
        }
    }
}

TEST(ParallelEquivalence, SimilarityGraphDeclusterMatchesSerial) {
    GridStructure gs = big_structure();
    for (std::uint64_t seed : kSeeds) {
        SimilarityOptions serial_opt;
        serial_opt.seed = seed;
        const Assignment serial = similarity_graph_decluster(gs, 8, serial_opt);
        for (unsigned workers : kWorkerCounts) {
            ThreadPool pool(workers);
            SimilarityOptions opt;
            opt.seed = seed;
            opt.pool = &pool;
            const Assignment pooled = similarity_graph_decluster(gs, 8, opt);
            ASSERT_EQ(pooled.disk_of, serial.disk_of)
                << "seed=" << seed << " workers=" << workers;
        }
    }
}

TEST(ParallelEquivalence, NearestNeighborsMatchesSerial) {
    GridStructure gs = big_structure();
    for (WeightKind kind : {WeightKind::kProximityIndex,
                            WeightKind::kCenterSimilarity}) {
        BucketWeights w(gs, kind);
        const auto serial = nearest_neighbors(w);
        for (unsigned workers : kWorkerCounts) {
            ThreadPool pool(workers);
            ASSERT_EQ(nearest_neighbors(w, &pool), serial)
                << "workers=" << workers;
        }
    }
}

}  // namespace
}  // namespace pgf
