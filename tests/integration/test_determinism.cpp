// Determinism contract of the parallel sweep engine and the scratch-based
// query path: the full bench pipeline (dataset -> grid file -> query
// collection -> declustering sweep -> rendered table) must produce
// byte-identical output at every thread count. Runs under the tsan preset,
// so it also doubles as a race detector for the sweep engine.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pgf/core/sweep.hpp"
#include "pgf/decluster/registry.hpp"
#include "pgf/disksim/simulator.hpp"
#include "pgf/util/rng.hpp"
#include "pgf/util/table.hpp"
#include "pgf/util/thread_pool.hpp"
#include "pgf/workload/datasets.hpp"
#include "pgf/workload/query_gen.hpp"

namespace pgf {
namespace {

struct Config {
    Method method = Method::kDiskModulo;
    std::uint32_t disks = 0;
};

/// Runs the fig6-style pipeline end to end and renders the result table,
/// using `threads` total threads (1 = strictly serial, no pool at all).
std::string run_pipeline(std::uint64_t seed, unsigned threads) {
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads - 1);
    SweepRunner runner(pool.get(), seed);

    Rng rng(seed);
    auto ds = make_hotspot2d(rng, 3000);
    GridFile<2> gf = ds.build();
    Rng qrng(seed + 1);
    auto queries = square_queries(ds.domain, 0.05, 120, qrng);
    auto qb = collect_query_buckets(gf, queries, pool.get());

    std::vector<Config> configs;
    for (Method m : {Method::kDiskModulo, Method::kFieldwiseXor,
                     Method::kHilbert, Method::kSsp, Method::kMinimax}) {
        for (std::uint32_t disks : {4u, 8u, 16u}) configs.push_back({m, disks});
    }
    GridStructure gs = gf.structure();
    auto stats = runner.map(configs, [&](const Config& c, const SweepTask& t) {
        DeclusterOptions dopt;
        dopt.seed = t.seed;
        return evaluate_workload(qb, decluster(gs, c.method, c.disks, dopt));
    });

    TextTable table({"method", "M", "avg response", "avg buckets", "balance"});
    for (std::size_t i = 0; i < configs.size(); ++i) {
        table.add(to_string(configs[i].method), configs[i].disks,
                  format_double(stats[i].avg_response),
                  format_double(stats[i].avg_buckets),
                  format_double(stats[i].data_balance));
    }
    return table.str();
}

TEST(Determinism, PipelineIsByteIdenticalAcrossThreadCounts) {
    for (std::uint64_t seed : {1001u, 2002u}) {
        const std::string serial = run_pipeline(seed, 1);
        EXPECT_FALSE(serial.empty());
        for (unsigned threads : {2u, 4u}) {
            const std::string pooled = run_pipeline(seed, threads);
            EXPECT_EQ(pooled, serial)
                << "seed=" << seed << " threads=" << threads;
        }
    }
}

TEST(Determinism, DifferentSeedsDiffer) {
    // Sanity check that the comparison above is not vacuous: the per-task
    // seed streams must actually reach the randomized schemes.
    EXPECT_NE(run_pipeline(1001, 1), run_pipeline(2002, 1));
}

TEST(Determinism, QueryCollectionMatchesSerialExactly) {
    Rng rng(7);
    auto ds = make_hotspot2d(rng, 5000);
    GridFile<2> gf = ds.build();
    Rng qrng(8);
    auto queries = square_queries(ds.domain, 0.03, 400, qrng);
    auto serial = collect_query_buckets(gf, queries);
    for (unsigned extra : {1u, 3u}) {
        ThreadPool pool(extra);
        EXPECT_EQ(collect_query_buckets(gf, queries, &pool), serial);
    }
}

}  // namespace
}  // namespace pgf
