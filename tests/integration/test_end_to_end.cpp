// End-to-end integration: dataset -> grid file -> declustering -> workload
// simulation -> quality metrics, exercising the same pipeline every bench
// binary uses, at reduced scale.
#include <gtest/gtest.h>

#include "pgf/core/declusterer.hpp"
#include "pgf/disksim/simulator.hpp"
#include "pgf/parallel/pgf_server.hpp"
#include "pgf/util/rng.hpp"
#include "pgf/workload/datasets.hpp"
#include "pgf/workload/query_gen.hpp"

namespace pgf {
namespace {

TEST(EndToEnd, TwoDimensionalPipeline) {
    Rng rng(1);
    auto ds = make_hotspot2d(rng, 4000);
    GridFile<2> gf = ds.build();
    ASSERT_EQ(gf.record_count(), 4000u);

    Declusterer dec(gf.structure());
    Rng qrng(2);
    auto queries = square_queries(ds.domain, 0.05, 300, qrng);
    auto qb = collect_query_buckets(gf, queries);

    for (Method m : all_methods()) {
        DeclusterReport report = dec.run(m, 8, {.seed = 3});
        WorkloadStats stats = evaluate_workload(qb, report.assignment);
        EXPECT_GE(stats.avg_response, stats.optimal) << to_string(m);
        EXPECT_GE(report.data_balance, 1.0) << to_string(m);
        EXPECT_GE(report.area_balance, 1.0) << to_string(m);
    }
}

TEST(EndToEnd, MinimaxBeatsDmAtScaleOnSkewedData) {
    // The paper's headline comparison, miniaturized: on a skewed dataset
    // with many disks, minimax must achieve a lower average response time
    // than disk modulo.
    Rng rng(5);
    auto ds = make_hotspot2d(rng, 6000);
    GridFile<2> gf = ds.build();
    GridStructure gs = gf.structure();
    Rng qrng(7);
    auto queries = square_queries(ds.domain, 0.05, 500, qrng);
    auto qb = collect_query_buckets(gf, queries);

    Assignment dm = decluster(gs, Method::kDiskModulo, 24, {.seed = 9});
    Assignment mm = decluster(gs, Method::kMinimax, 24, {.seed = 9});
    WorkloadStats s_dm = evaluate_workload(qb, dm);
    WorkloadStats s_mm = evaluate_workload(qb, mm);
    EXPECT_LT(s_mm.avg_response, s_dm.avg_response);
}

TEST(EndToEnd, ResponseDecreasesWithDisksForMinimax) {
    Rng rng(11);
    auto ds = make_uniform2d(rng, 5000);
    GridFile<2> gf = ds.build();
    GridStructure gs = gf.structure();
    Rng qrng(13);
    auto queries = square_queries(ds.domain, 0.05, 300, qrng);
    auto qb = collect_query_buckets(gf, queries);
    double prev = 1e300;
    for (std::uint32_t m : {4u, 8u, 16u, 32u}) {
        Assignment a = decluster(gs, Method::kMinimax, m, {.seed = 15});
        WorkloadStats s = evaluate_workload(qb, a);
        EXPECT_LT(s.avg_response, prev) << m << " disks";
        prev = s.avg_response;
    }
}

TEST(EndToEnd, ThreeDimensionalDatasetsPipeline) {
    Rng rng(17);
    auto ds = make_dsmc3d(rng, 8000);
    GridFile<3> gf = ds.build();
    Declusterer dec(gf.structure());
    Rng qrng(19);
    auto queries = square_queries(ds.domain, 0.01, 200, qrng);
    auto qb = collect_query_buckets(gf, queries);
    DeclusterReport mm = dec.run(Method::kMinimax, 16, {.seed = 21});
    DeclusterReport hcam = dec.run(Method::kHilbert, 16, {.seed = 21});
    WorkloadStats s_mm = evaluate_workload(qb, mm.assignment);
    WorkloadStats s_hcam = evaluate_workload(qb, hcam.assignment);
    // Minimax should match or beat HCAM on skewed 3-d data (allow a tiny
    // tolerance: this is a statistical property at reduced scale).
    EXPECT_LE(s_mm.avg_response, s_hcam.avg_response * 1.10);
    // And separate nearest neighbors far better than index-based schemes.
    EXPECT_LE(mm.closest_pairs, hcam.closest_pairs);
}

TEST(EndToEnd, DeclustererValidatesStructure) {
    GridStructure broken;
    broken.shape = {2};
    broken.domain_lo = {0.0};
    broken.domain_hi = {1.0};
    EXPECT_THROW(Declusterer{broken}, CheckError);
}

TEST(EndToEnd, ParallelServerAgreesWithSerialMetrics) {
    Rng rng(23);
    auto ds = make_uniform2d(rng, 3000);
    GridFile<2> gf = ds.build();
    GridStructure gs = gf.structure();
    Assignment a = decluster(gs, Method::kMinimax, 4, {.seed = 25});
    Rng qrng(27);
    auto queries = square_queries(ds.domain, 0.05, 50, qrng);

    ClusterConfig cfg;
    cfg.nodes = 4;
    ParallelGridFileServer<2> server(gf, a, cfg);
    BatchResult r = server.execute(queries);

    auto qb = collect_query_buckets(gf, queries);
    std::uint64_t serial_blocks = 0;
    for (const auto& buckets : qb) serial_blocks += response_time(buckets, a);
    EXPECT_EQ(r.response_blocks, serial_blocks);
    std::uint64_t records = 0;
    for (const auto& q : queries) records += gf.query_records(q).size();
    EXPECT_EQ(r.records_returned, records);
}

TEST(EndToEnd, FourDimensionalAnimationPipeline) {
    Rng rng(29);
    auto ds = make_dsmc4d(rng, 4, 2500);
    GridFile<4> gf = ds.build();
    GridStructure gs = gf.structure();
    Assignment a = decluster(gs, Method::kMinimax, 4, {.seed = 31});
    ClusterConfig cfg;
    cfg.nodes = 4;
    ParallelGridFileServer<4> server(gf, a, cfg);
    // Slab queries span the full y/z extent, so consecutive slabs re-fetch
    // the buckets crossing slab boundaries — the caching effect the paper
    // notes for the animation workload.
    auto queries = animation_queries(ds.domain, 4, 0.3);
    BatchResult r = server.execute(queries);
    EXPECT_EQ(r.queries, 4u * 4u);
    EXPECT_GT(r.total_blocks, 0u);
    EXPECT_GT(r.elapsed_s, 0.0);
    // Animation revisits the same temporal partition: the cache must see
    // hits within the batch.
    EXPECT_GT(r.cache_hits, 0u);
}

}  // namespace
}  // namespace pgf
